//! Incremental SHB construction over the analysis database.
//!
//! The cold build walks origins in arena index order; each walk appends
//! to shared state (the lock-element interner, the global fresh-lock
//! counter, the edge lists, the access index) in a deterministic order.
//! A warm run must reproduce that shared state *exactly* — the deadlock
//! report renders raw lock-element object ids (including the synthetic
//! `u32::MAX - k` ids of fresh locks), so even the interleaving of
//! element interning matters.
//!
//! Per origin, [`o2_db::ShbOriginArtifact`] therefore stores the complete
//! walk effect in canonical form: access and acquire nodes with their
//! trace positions, locksets as a local table of canonical elements,
//! fresh locks as per-origin ordinals, and the inter-origin edges the
//! walk emitted. Replay re-interns elements in the cold order — the
//! dispatcher element first, then per trace event ascending by position
//! (acquired elements in stored order; an access's lockset introduces at
//! most the atomic-cell element) — and allocates fresh locks from the
//! shared counter by ordinal. An origin is replayed exactly when its
//! state signature ([`o2_pta::CanonIndex::origin_sig`]) is unchanged;
//! everything else is re-walked cold, and truncated walks are never
//! cached.

use crate::graph::{
    AccessNode, AcquireNode, Builder, CondEvent, EntryEdge, JoinEdge, ShbConfig, ShbGraph,
};
use crate::locks::LockElem;
use o2_analysis::{memkey_from_db_cached, memkey_to_db, KeyResolver, LocTable, MemKey};
use o2_db::{
    AnalysisDb, DbCondEvent, DbEdge, DbLockElem, DbShbAccess, DbShbAcquire, DbStmt, Digest,
    FastMap, FastSet, ShbOriginArtifact, StableIds,
};
use o2_ir::ids::{GStmt, MethodId};
use o2_ir::origins::OriginKind;
use o2_ir::program::Program;
use o2_ir::ProgramCtx;
use o2_pta::{CanonIndex, ObjId, OriginId, PtaResult};
use std::collections::HashMap;
use std::time::Instant;

/// A warm SHB build: the graph plus replay accounting.
#[derive(Debug)]
pub struct ShbIncr {
    /// The graph, equal to what a cold [`crate::build_shb`] would build.
    pub graph: ShbGraph,
    /// Origins replayed from stored artifacts.
    pub origins_replayed: usize,
    /// Origins re-walked (signature changed, artifact stale or absent).
    pub origins_walked: usize,
    /// Per-origin value of the shared fresh-lock counter just before that
    /// origin's walk/replay. Lets downstream stages express a fresh lock
    /// element (`ObjId(u32::MAX - k)`) as an origin-relative ordinal,
    /// which *is* stable across runs.
    pub fresh_base: Vec<u32>,
}

/// One origin's artifact translated onto this run's dense ids, but not
/// yet interned. Translation is a pure read so that a failure can fall
/// back to a cold walk without having perturbed the shared interners.
struct DecodedOrigin {
    accesses: Vec<(MemKey, GStmt, bool, u32, u32, u32)>,
    acquires: Vec<(u32, GStmt, Vec<LockElem>, u32, u32)>,
    sets: Vec<Vec<LockElem>>,
    entry_edges: Vec<(OriginId, u32, GStmt)>,
    join_edges: Vec<(OriginId, u32, GStmt)>,
    /// `(pos, stmt, conds, all)` condvar events; cond edges are rebuilt
    /// from these at graph finish exactly as after a cold walk.
    waits: Vec<(u32, GStmt, Vec<ObjId>, bool)>,
    notifies: Vec<(u32, GStmt, Vec<ObjId>, bool)>,
}

fn stmt_to_db(g: GStmt, canon: &CanonIndex, names: &mut StableIds) -> DbStmt {
    DbStmt {
        method: names.intern(canon.qname(g.method)),
        index: g.index,
    }
}

/// Memoized stable-id → current-run-id resolution shared across all
/// decoded artifacts of one warm build: the same few method, class, and
/// field names repeat across thousands of stored accesses, and each
/// string lookup costs a hash of the name.
#[derive(Default)]
struct NameCache {
    methods: FastMap<u32, Option<MethodId>>,
    keys: KeyResolver,
}

impl NameCache {
    fn method(&mut self, canon: &CanonIndex, names: &StableIds, id: u32) -> Option<MethodId> {
        *self
            .methods
            .entry(id)
            .or_insert_with(|| names.resolve(id).and_then(|q| canon.method_of_qname(q)))
    }
}

fn stmt_from_db(
    s: DbStmt,
    canon: &CanonIndex,
    names: &StableIds,
    cache: &mut NameCache,
) -> Option<GStmt> {
    let method = cache.method(canon, names, s.method)?;
    Some(GStmt::new(method, s.index as usize))
}

/// Fresh-lock ids are `u32::MAX - k` for counter values `k = 1..`; they
/// can never collide with dense object ids.
fn is_fresh(obj: ObjId, fresh_total: u32) -> bool {
    fresh_total > 0 && obj.0 >= u32::MAX - fresh_total
}

fn elem_to_db(
    e: LockElem,
    program: &Program,
    canon: &CanonIndex,
    names: &mut StableIds,
    fresh_before: u32,
    fresh_after: u32,
) -> Option<DbLockElem> {
    // A fresh lock from another origin cannot appear here; bail (and walk
    // cold) rather than encode a wrong ordinal.
    let fresh_ordinal = |o: ObjId| -> Option<u32> {
        let counter = u32::MAX - o.0;
        if counter <= fresh_before {
            return None;
        }
        Some(counter - fresh_before - 1)
    };
    Some(match e {
        LockElem::Obj(o) if is_fresh(o, fresh_after) => DbLockElem::Fresh(fresh_ordinal(o)?),
        LockElem::Obj(o) => DbLockElem::Obj(canon.obj_digest(o)),
        LockElem::Class(c) => DbLockElem::Class(names.intern(&program.class(c).name)),
        LockElem::Dispatcher(d) => DbLockElem::Dispatcher(d),
        LockElem::AtomicCell(o, f) => {
            DbLockElem::AtomicCell(canon.obj_digest(o), names.intern(program.field_name(f)))
        }
        LockElem::RwRead(o) if is_fresh(o, fresh_after) => {
            DbLockElem::RwFreshRead(fresh_ordinal(o)?)
        }
        LockElem::RwRead(o) => DbLockElem::RwRead(canon.obj_digest(o)),
        LockElem::RwWrite(o) if is_fresh(o, fresh_after) => {
            DbLockElem::RwFreshWrite(fresh_ordinal(o)?)
        }
        LockElem::RwWrite(o) => DbLockElem::RwWrite(canon.obj_digest(o)),
        LockElem::Executor(e) => DbLockElem::Executor(e),
    })
}

fn elem_from_db(
    e: DbLockElem,
    program: &Program,
    canon: &CanonIndex,
    names: &StableIds,
    fresh_base: u32,
    cache: &mut NameCache,
) -> Option<LockElem> {
    Some(match e {
        DbLockElem::Obj(d) => LockElem::Obj(canon.obj_of_digest(d)?),
        DbLockElem::Fresh(ordinal) => LockElem::Obj(ObjId(u32::MAX - (fresh_base + ordinal + 1))),
        DbLockElem::Class(nid) => LockElem::Class(cache.keys.class(program, names, nid)?),
        DbLockElem::Dispatcher(d) => LockElem::Dispatcher(d),
        DbLockElem::AtomicCell(d, f) => LockElem::AtomicCell(
            canon.obj_of_digest(d)?,
            cache.keys.field(program, names, f)?,
        ),
        DbLockElem::RwRead(d) => LockElem::RwRead(canon.obj_of_digest(d)?),
        DbLockElem::RwWrite(d) => LockElem::RwWrite(canon.obj_of_digest(d)?),
        DbLockElem::RwFreshRead(ordinal) => {
            LockElem::RwRead(ObjId(u32::MAX - (fresh_base + ordinal + 1)))
        }
        DbLockElem::RwFreshWrite(ordinal) => {
            LockElem::RwWrite(ObjId(u32::MAX - (fresh_base + ordinal + 1)))
        }
        DbLockElem::Executor(e) => LockElem::Executor(e),
    })
}

/// Encodes the walk effect of `origin` from the builder's state. `e0`,
/// `j0` and `fresh_before` are the edge-list lengths and fresh counter
/// captured just before the walk. Returns `None` for truncated traces
/// (never cached) or untranslatable state.
#[allow(clippy::too_many_arguments)]
fn encode_origin(
    builder: &Builder<'_>,
    origin: OriginId,
    canon: &CanonIndex,
    names: &mut StableIds,
    e0: usize,
    j0: usize,
    w0: usize,
    n0: usize,
    fresh_before: u32,
) -> Option<ShbOriginArtifact> {
    let program = builder.program;
    let trace = &builder.traces[origin.0 as usize];
    if trace.truncated {
        return None;
    }
    let fresh_after = builder.fresh_lock_counter;

    let mut set_local: HashMap<u32, u32> = HashMap::new();
    let mut sets: Vec<Vec<DbLockElem>> = Vec::new();
    let mut local_of = |sid: crate::locks::LockSetId,
                        names: &mut StableIds,
                        sets: &mut Vec<Vec<DbLockElem>>|
     -> Option<u32> {
        if let Some(&i) = set_local.get(&sid.0) {
            return Some(i);
        }
        let elems: Option<Vec<DbLockElem>> = builder
            .locks
            .set_elems(sid)
            .iter()
            .map(|&eid| {
                elem_to_db(
                    builder.locks.elem_data(eid),
                    program,
                    canon,
                    names,
                    fresh_before,
                    fresh_after,
                )
            })
            .collect();
        let i = sets.len() as u32;
        sets.push(elems?);
        set_local.insert(sid.0, i);
        Some(i)
    };

    let mut accesses = Vec::with_capacity(trace.accesses.len());
    for a in &trace.accesses {
        accesses.push(DbShbAccess {
            key: memkey_to_db(a.key, program, canon, names),
            stmt: stmt_to_db(a.stmt, canon, names),
            is_write: a.is_write,
            lockset: local_of(a.lockset, names, &mut sets)?,
            pos: a.pos,
            region: a.region,
        });
    }
    let mut acquires = Vec::with_capacity(trace.acquires.len());
    for q in &trace.acquires {
        let elems: Option<Vec<DbLockElem>> = q
            .elems
            .iter()
            .map(|&eid| {
                elem_to_db(
                    builder.locks.elem_data(eid),
                    program,
                    canon,
                    names,
                    fresh_before,
                    fresh_after,
                )
            })
            .collect();
        acquires.push(DbShbAcquire {
            pos: q.pos,
            stmt: stmt_to_db(q.stmt, canon, names),
            elems: elems?,
            held_before: local_of(q.held_before, names, &mut sets)?,
            released_pos: q.released_pos,
        });
    }
    let entry_edges = builder.entry_edges[e0..]
        .iter()
        .map(|e| DbEdge {
            other: canon.origin_digest(e.child),
            pos: e.pos,
            stmt: stmt_to_db(e.stmt, canon, names),
        })
        .collect();
    let join_edges = builder.join_edges[j0..]
        .iter()
        .map(|j| DbEdge {
            other: canon.origin_digest(j.child),
            pos: j.pos,
            stmt: stmt_to_db(j.stmt, canon, names),
        })
        .collect();
    let encode_events = |events: &[CondEvent], names: &mut StableIds| -> Vec<DbCondEvent> {
        events
            .iter()
            .map(|ev| DbCondEvent {
                pos: ev.pos,
                stmt: stmt_to_db(ev.stmt, canon, names),
                conds: ev.conds.iter().map(|&o| canon.obj_digest(o)).collect(),
                all: ev.all,
            })
            .collect()
    };
    let waits = encode_events(&builder.wait_events[w0..], names);
    let notifies = encode_events(&builder.notify_events[n0..], names);

    Some(ShbOriginArtifact {
        sig: canon.origin_sig(origin),
        sets,
        accesses,
        acquires,
        len: trace.len,
        truncated: false,
        entry_edges,
        join_edges,
        fresh_count: fresh_after - fresh_before,
        waits,
        notifies,
    })
}

/// Pure translation of an artifact onto this run's ids; `None` marks a
/// stale artifact (the caller walks cold instead). Nothing is interned.
fn decode_origin(
    art: &ShbOriginArtifact,
    program: &Program,
    canon: &CanonIndex,
    names: &StableIds,
    fresh_base: u32,
    cache: &mut NameCache,
) -> Option<DecodedOrigin> {
    let sets: Option<Vec<Vec<LockElem>>> = art
        .sets
        .iter()
        .map(|s| {
            s.iter()
                .map(|&e| elem_from_db(e, program, canon, names, fresh_base, cache))
                .collect()
        })
        .collect();
    let sets = sets?;
    let n_sets = sets.len() as u32;

    let mut accesses = Vec::with_capacity(art.accesses.len());
    for a in &art.accesses {
        if a.lockset >= n_sets {
            return None;
        }
        accesses.push((
            memkey_from_db_cached(a.key, program, canon, names, &mut cache.keys)?,
            stmt_from_db(a.stmt, canon, names, cache)?,
            a.is_write,
            a.lockset,
            a.pos,
            a.region,
        ));
    }
    let mut acquires = Vec::with_capacity(art.acquires.len());
    for q in &art.acquires {
        if q.held_before >= n_sets {
            return None;
        }
        let elems: Option<Vec<LockElem>> = q
            .elems
            .iter()
            .map(|&e| elem_from_db(e, program, canon, names, fresh_base, cache))
            .collect();
        acquires.push((
            q.pos,
            stmt_from_db(q.stmt, canon, names, cache)?,
            elems?,
            q.held_before,
            q.released_pos,
        ));
    }
    let mut decode_edges = |edges: &[DbEdge]| -> Option<Vec<(OriginId, u32, GStmt)>> {
        edges
            .iter()
            .map(|e| {
                Some((
                    canon.origin_of_digest(e.other)?,
                    e.pos,
                    stmt_from_db(e.stmt, canon, names, cache)?,
                ))
            })
            .collect()
    };
    let entry_edges = decode_edges(&art.entry_edges)?;
    let join_edges = decode_edges(&art.join_edges)?;
    type DecodedCondEvent = (u32, GStmt, Vec<ObjId>, bool);
    let mut decode_events = |events: &[o2_db::DbCondEvent]| -> Option<Vec<DecodedCondEvent>> {
        events
            .iter()
            .map(|ev| {
                let conds: Option<Vec<ObjId>> =
                    ev.conds.iter().map(|&d| canon.obj_of_digest(d)).collect();
                let mut conds = conds?;
                // Digests were stored in the cold walk's sorted ObjId
                // order, but this run's dense ids may permute them.
                conds.sort_unstable();
                conds.dedup();
                Some((
                    ev.pos,
                    stmt_from_db(ev.stmt, canon, names, cache)?,
                    conds,
                    ev.all,
                ))
            })
            .collect()
    };
    Some(DecodedOrigin {
        accesses,
        acquires,
        sets,
        entry_edges,
        join_edges,
        waits: decode_events(&art.waits)?,
        notifies: decode_events(&art.notifies)?,
    })
}

/// Replays one decoded origin into the builder, reproducing the cold
/// walk's interning order exactly.
fn apply_replay(
    builder: &mut Builder<'_>,
    origin: OriginId,
    dec: &DecodedOrigin,
    len: u32,
    fresh_count: u32,
) {
    // The cold walk interns the dispatcher element before anything else.
    let kind = builder.pta.arena.origin_data(origin).kind;
    match kind {
        OriginKind::Event { dispatcher } if builder.config.event_dispatcher_lock => {
            builder.locks.elem(LockElem::Dispatcher(dispatcher));
        }
        OriginKind::Main => {
            if let Some(d) = builder.config.main_dispatcher {
                builder.locks.elem(LockElem::Dispatcher(d));
            }
        }
        OriginKind::AsyncTask { executor, workers }
            if workers <= 1 && builder.config.event_dispatcher_lock =>
        {
            builder.locks.elem(LockElem::Executor(executor));
        }
        _ => {}
    }

    // Intern sets lazily, per event: every element of a stored set except
    // the event's own contribution is already interned by an earlier
    // event, so interning a set's elements in stored order reproduces the
    // cold first-interning sequence.
    let mut set_ids: Vec<Option<crate::locks::LockSetId>> = vec![None; dec.sets.len()];
    // Merge acquires and accesses ascending by trace position (positions
    // are unique within an origin).
    let (mut ai, mut xi) = (0usize, 0usize);
    while ai < dec.acquires.len() || xi < dec.accesses.len() {
        let take_acquire = match (dec.acquires.get(ai), dec.accesses.get(xi)) {
            (Some(q), Some(a)) => q.0 < a.4,
            (Some(_), None) => true,
            _ => false,
        };
        if take_acquire {
            let (pos, stmt, elems, held_local, released_pos) = &dec.acquires[ai];
            let elem_ids: Vec<u32> = elems.iter().map(|&e| builder.locks.elem(e)).collect();
            let held_before = intern_set(builder, &dec.sets, &mut set_ids, *held_local);
            builder.traces[origin.0 as usize]
                .acquires
                .push(AcquireNode {
                    pos: *pos,
                    stmt: *stmt,
                    elems: elem_ids,
                    held_before,
                    released_pos: *released_pos,
                });
            ai += 1;
        } else {
            let (key, stmt, is_write, set_local, pos, region) = dec.accesses[xi];
            let lockset = intern_set(builder, &dec.sets, &mut set_ids, set_local);
            let idx = builder.traces[origin.0 as usize].accesses.len() as u32;
            builder.traces[origin.0 as usize].accesses.push(AccessNode {
                key,
                stmt,
                is_write,
                lockset,
                pos,
                region,
            });
            let loc = builder.locs.intern(key);
            if loc.index() >= builder.accesses_by_loc.len() {
                builder
                    .accesses_by_loc
                    .resize_with(loc.index() + 1, Vec::new);
            }
            builder.accesses_by_loc[loc.index()].push((origin, idx));
            xi += 1;
        }
    }

    for &(child, pos, stmt) in &dec.entry_edges {
        builder.entry_edges.push(EntryEdge {
            parent: origin,
            pos,
            child,
            stmt,
        });
    }
    for &(child, pos, stmt) in &dec.join_edges {
        builder.join_edges.push(JoinEdge {
            child,
            parent: origin,
            pos,
            stmt,
        });
    }
    for (list, dst) in [
        (&dec.waits, &mut builder.wait_events),
        (&dec.notifies, &mut builder.notify_events),
    ] {
        for (pos, stmt, conds, all) in list {
            dst.push(CondEvent {
                origin,
                pos: *pos,
                stmt: *stmt,
                conds: conds.clone(),
                all: *all,
            });
        }
    }
    let t = &mut builder.traces[origin.0 as usize];
    t.len = len;
    t.truncated = false;
    builder.fresh_lock_counter += fresh_count;
}

fn intern_set(
    builder: &mut Builder<'_>,
    sets: &[Vec<LockElem>],
    set_ids: &mut [Option<crate::locks::LockSetId>],
    local: u32,
) -> crate::locks::LockSetId {
    if let Some(id) = set_ids[local as usize] {
        return id;
    }
    let ids: Vec<u32> = sets[local as usize]
        .iter()
        .map(|&e| builder.locks.elem(e))
        .collect();
    let id = builder.locks.set(ids);
    set_ids[local as usize] = Some(id);
    id
}

/// Builds the SHB graph incrementally: replays the stored subgraph of
/// every origin whose state signature is unchanged, re-walks the rest,
/// and rewrites the database section to exactly this run's (non-
/// truncated) artifacts.
pub fn build_shb_incremental(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    config: &ShbConfig,
    canon: &CanonIndex,
    locs: &mut LocTable,
    db: &mut AnalysisDb,
) -> ShbIncr {
    debug_assert_eq!(
        pta.program_id,
        ctx.id(),
        "build_shb_incremental: PtaResult from a different ProgramCtx"
    );
    debug_assert_eq!(
        canon.program_id(),
        ctx.id(),
        "build_shb_incremental: CanonIndex from a different ProgramCtx"
    );
    debug_assert_eq!(
        locs.program(),
        ctx.id(),
        "build_shb_incremental: LocTable from a different ProgramCtx"
    );
    let program = ctx.program();
    let start = Instant::now();
    let mut builder = Builder::new(program, pta, config, locs, start);
    let mut names = std::mem::take(&mut db.names);
    // Replayed artifacts are *moved* from the old store at the end of the
    // run rather than cloned as they are visited: an unchanged program
    // would otherwise deep-copy every trace on every warm run.
    let mut replayed_keys: Vec<Digest> = Vec::new();
    let mut walked_arts: Vec<(Digest, ShbOriginArtifact)> = Vec::new();
    let mut origins_replayed = 0usize;
    let mut origins_walked = 0usize;
    let mut fresh_base = Vec::with_capacity(pta.num_origins());
    let mut cache = NameCache::default();

    for (origin, _) in pta.arena.origins() {
        fresh_base.push(builder.fresh_lock_counter);
        let od = canon.origin_digest(origin);
        let sig = canon.origin_sig(origin);
        let mut replayed = false;
        if let Some(art) = db.shb_origin.get(&od) {
            if art.sig == sig && !art.truncated {
                if let Some(dec) = decode_origin(
                    art,
                    program,
                    canon,
                    &names,
                    builder.fresh_lock_counter,
                    &mut cache,
                ) {
                    apply_replay(&mut builder, origin, &dec, art.len, art.fresh_count);
                    replayed_keys.push(od);
                    origins_replayed += 1;
                    replayed = true;
                }
            }
        }
        if !replayed {
            origins_walked += 1;
            let e0 = builder.entry_edges.len();
            let j0 = builder.join_edges.len();
            let w0 = builder.wait_events.len();
            let n0 = builder.notify_events.len();
            let f0 = builder.fresh_lock_counter;
            builder.walk_origin(origin);
            if let Some(art) =
                encode_origin(&builder, origin, canon, &mut names, e0, j0, w0, n0, f0)
            {
                walked_arts.push((od, art));
            }
        }
    }

    // Prune the store in place: replayed entries stay where they are,
    // stale ones (not visited this run) drop, fresh walks insert.
    let visited: FastSet<Digest> = replayed_keys.into_iter().collect();
    db.shb_origin.retain(|k, _| visited.contains(k));
    db.shb_origin.extend(walked_arts);
    db.names = names;
    ShbIncr {
        graph: builder.finish(start),
        origins_replayed,
        origins_walked,
        fresh_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_shb;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use std::collections::BTreeMap;

    const SRC: &str = r#"
        class S { field a; field b; }
        class W1 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; sync (s) { s.a = s; } }
        }
        class W2 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.b = s; }
        }
        class Main {
            static method main() {
                s = new S();
                w1 = new W1(s);
                w2 = new W2(s);
                w1.start();
                w2.start();
                join w2;
                x = s.a;
            }
        }
    "#;

    fn setup(src: &str) -> (o2_ir::Program, o2_pta::PtaResult, CanonIndex) {
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let digests = o2_ir::digest_program(&p);
        let canon = CanonIndex::build(&o2_ir::ProgramCtx::solo(&p), &pta, &digests);
        (p, pta, canon)
    }

    /// Canonical view of the dense access index: key → (origin, index)
    /// list, recovered through each access node's own key so the check is
    /// independent of the two runs' `LocId` numberings.
    fn index_by_key(g: &ShbGraph) -> BTreeMap<MemKey, Vec<(u32, u32)>> {
        let mut m: BTreeMap<MemKey, Vec<(u32, u32)>> = BTreeMap::new();
        for slot in &g.accesses_by_loc {
            for &(o, i) in slot {
                let key = g.traces[o.0 as usize].accesses[i as usize].key;
                m.entry(key).or_default().push((o.0, i));
            }
        }
        m
    }

    /// Structural graph equality, down to interned element ids (the
    /// deadlock report renders raw element object ids, so replay must
    /// reproduce them exactly). Lockset *ids* may differ in numbering;
    /// their element content must not.
    fn graphs_equal(a: &ShbGraph, b: &ShbGraph) -> bool {
        a.traces.len() == b.traces.len()
            && a.traces.iter().zip(&b.traces).all(|(x, y)| {
                x.len == y.len
                    && x.truncated == y.truncated
                    && x.acquires.len() == y.acquires.len()
                    && x.acquires.iter().zip(&y.acquires).all(|(m, n)| {
                        m.pos == n.pos
                            && m.stmt == n.stmt
                            && m.elems == n.elems
                            && m.released_pos == n.released_pos
                            && a.locks.set_elems(m.held_before) == b.locks.set_elems(n.held_before)
                    })
                    && x.accesses.len() == y.accesses.len()
                    && x.accesses.iter().zip(&y.accesses).all(|(m, n)| {
                        m.key == n.key
                            && m.stmt == n.stmt
                            && m.is_write == n.is_write
                            && m.pos == n.pos
                            && m.region == n.region
                            && a.locks.set_elems(m.lockset) == b.locks.set_elems(n.lockset)
                    })
            })
            && a.entry_edges == b.entry_edges
            && a.join_edges == b.join_edges
            && a.cond_edges == b.cond_edges
            && index_by_key(a) == index_by_key(b)
    }

    #[test]
    fn warm_replay_equals_cold_build() {
        let (p, pta, canon) = setup(SRC);
        let cold = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut LocTable::new(),
        );
        let mut db = AnalysisDb::new(Digest(1, 1));
        let first = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        assert_eq!(first.origins_replayed, 0);
        assert!(graphs_equal(&first.graph, &cold));
        let second = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        assert_eq!(second.origins_walked, 0);
        assert_eq!(second.origins_replayed, first.origins_walked);
        assert!(graphs_equal(&second.graph, &cold));
    }

    #[test]
    fn edit_rewalks_only_the_changed_origin() {
        let (p, pta, canon) = setup(SRC);
        let mut db = AnalysisDb::new(Digest(1, 1));
        build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        // Edit W2.run only; W1's origin replays.
        let edited = SRC.replace("s = this.s; s.b = s;", "s = this.s; s.b = s; y = s.b;");
        let (p2, pta2, canon2) = setup(&edited);
        let warm = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p2),
            &pta2,
            &ShbConfig::default(),
            &canon2,
            &mut LocTable::new(),
            &mut db,
        );
        let cold = build_shb(
            &o2_ir::ProgramCtx::solo(&p2),
            &pta2,
            &ShbConfig::default(),
            &mut LocTable::new(),
        );
        assert!(graphs_equal(&warm.graph, &cold));
        assert!(warm.origins_replayed >= 1, "untouched origins replay");
        assert!(
            warm.origins_walked < canon2.num_origins(),
            "not everything re-walks"
        );
    }

    #[test]
    fn fresh_locks_replay_with_identical_ids() {
        // A lock variable with an empty points-to set draws a fresh
        // element from the shared counter; replay must reproduce the
        // exact synthetic object id.
        let src = r#"
            class S { field a; }
            class W impl Runnable {
                field s;
                field l;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; l = this.l; sync (l) { s.a = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    s.a = s;
                }
            }
        "#;
        let (p, pta, canon) = setup(src);
        let cold = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut LocTable::new(),
        );
        let has_fresh = cold.traces.iter().flat_map(|t| &t.acquires).any(|q| {
            q.elems
                .iter()
                .any(|&e| matches!(cold.locks.elem_data(e), LockElem::Obj(o) if o.0 > 1_000_000))
        });
        assert!(has_fresh, "test setup must exercise a fresh lock");
        let mut db = AnalysisDb::new(Digest(1, 1));
        build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        let warm = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        assert_eq!(warm.origins_walked, 0);
        assert!(graphs_equal(&warm.graph, &cold));
    }

    #[test]
    fn truncated_walks_are_not_cached() {
        let (p, pta, canon) = setup(SRC);
        let cfg = ShbConfig {
            node_budget: 1,
            ..Default::default()
        };
        let mut db = AnalysisDb::new(Digest(1, 1));
        let first = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &cfg,
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        assert!(first.graph.traces.iter().any(|t| t.truncated));
        let warm = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &cfg,
            &canon,
            &mut LocTable::new(),
            &mut db,
        );
        // Truncated origins were never stored, so they walk again.
        assert!(warm.origins_walked > 0);
        let cold = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &cfg,
            &mut LocTable::new(),
        );
        assert!(graphs_equal(&warm.graph, &cold));
    }
}
