//! # o2-shb — the static happens-before graph with origins
//!
//! Implements §4 of the paper: each origin (thread/event) is represented
//! by a *static trace* of memory accesses and synchronization operations,
//! and the three sound optimizations of §4.1:
//!
//! 1. **Integer-id intra-origin HB** — no intra-origin edges; a node's
//!    position in its trace is its happens-before rank, so intra-origin HB
//!    is one comparison ([`ShbGraph::happens_before`]).
//! 2. **Canonical locksets** — every lock combination is interned to a
//!    [`locks::LockSetId`] and pairwise disjointness is cached
//!    ([`locks::LockTable`]).
//! 3. **Lock regions** — every access carries a region sequence number;
//!    accesses to the same location with the same kind inside one region
//!    are merged by the detector into a single representative.
//!
//! ```
//! use o2_analysis::LocTable;
//! use o2_ir::parser::parse;
//! use o2_ir::ProgramCtx;
//! use o2_pta::{analyze, Policy, PtaConfig};
//! use o2_shb::{build_shb, ShbConfig};
//!
//! let program = parse(r#"
//!     class W impl Runnable { method run() { } }
//!     class Main {
//!         static method main() { w = new W(); w.start(); join w; }
//!     }
//! "#).unwrap();
//! let ctx = ProgramCtx::solo(&program);
//! let pta = analyze(&ctx, &PtaConfig::with_policy(Policy::origin1()));
//! let mut locs = LocTable::new();
//! let shb = build_shb(&ctx, &pta, &ShbConfig::default(), &mut locs);
//! assert_eq!(shb.entry_edges.len(), 1);
//! assert_eq!(shb.join_edges.len(), 1);
//! ```

#![warn(missing_docs)]

mod rules_tests;

pub mod graph;
pub mod incr;
pub mod locks;

pub use graph::{
    build_shb, AccessNode, AcquireNode, EntryCsr, EntryEdge, JoinCsr, JoinEdge, OriginTrace,
    ShbConfig, ShbGraph, ShbStats,
};
pub use incr::{build_shb_incremental, ShbIncr};
pub use locks::{LockElem, LockSetId, LockTable};

#[cfg(test)]
mod tests {
    use super::*;
    use o2_analysis::{LocTable, MemKey};
    use o2_ir::parser::parse;
    use o2_pta::{analyze, OriginId, Policy, PtaConfig};

    fn shb_for(src: &str) -> (o2_ir::Program, o2_pta::PtaResult, ShbGraph, LocTable) {
        let p = parse(src).unwrap();
        o2_ir::validate::assert_valid(&p);
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let mut locs = LocTable::new();
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut locs,
        );
        (p, pta, shb, locs)
    }

    const FORK_JOIN: &str = r#"
        class S { field data; }
        class W impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class Main {
            static method main() {
                s = new S();
                x1 = s.data;
                w = new W(s);
                w.start();
                join w;
                x2 = s.data;
            }
        }
    "#;

    #[test]
    fn entry_and_join_edges_exist() {
        let (_, _, shb, _) = shb_for(FORK_JOIN);
        assert_eq!(shb.entry_edges.len(), 1);
        assert_eq!(shb.join_edges.len(), 1);
        assert_eq!(shb.stats.num_entry_edges, 1);
    }

    /// Accesses before start() happen-before the thread; accesses after
    /// join() happen-after; the thread's write is ordered between them.
    #[test]
    fn fork_join_happens_before() {
        let (p, pta, shb, _) = shb_for(FORK_JOIN);
        let data = p.field_by_name("data").unwrap();
        let root = OriginId::ROOT;
        let child = OriginId(1);
        // Find main's two reads of s.data and the thread's write.
        let main_reads: Vec<_> = shb.traces[root.0 as usize]
            .accesses
            .iter()
            .filter(|a| matches!(a.key, MemKey::Field(_, f) if f == data) && !a.is_write)
            .collect();
        assert_eq!(main_reads.len(), 2);
        let thread_writes: Vec<_> = shb.traces[child.0 as usize]
            .accesses
            .iter()
            .filter(|a| matches!(a.key, MemKey::Field(_, f) if f == data) && a.is_write)
            .collect();
        assert_eq!(thread_writes.len(), 1);
        let r1 = (root, main_reads[0].pos);
        let r2 = (root, main_reads[1].pos);
        let w = (child, thread_writes[0].pos);
        assert!(shb.happens_before(r1, w), "pre-start read HB thread write");
        assert!(shb.happens_before(w, r2), "thread write HB post-join read");
        assert!(!shb.happens_before(w, r1));
        assert!(!shb.happens_before(r2, w));
        // Naive HB must agree everywhere.
        for (x, y) in [(r1, w), (w, r2), (w, r1), (r2, w), (r1, r2), (r2, r1)] {
            assert_eq!(
                shb.happens_before(x, y),
                shb.happens_before_naive(x, y),
                "naive vs optimized disagree on {x:?} -> {y:?}"
            );
            let _ = pta;
        }
    }

    #[test]
    fn unjoined_threads_are_unordered() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w1 = new W(s);
                    w2 = new W(s);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (_, _, shb, _) = shb_for(src);
        let a = (OriginId(1), 0u32);
        let b = (OriginId(2), 0u32);
        assert!(!shb.happens_before(a, b));
        assert!(!shb.happens_before(b, a));
    }

    #[test]
    fn locksets_are_recorded() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() {
                    s = this.s;
                    sync (s) { s.data = s; }
                    s.data = s;
                }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                }
            }
        "#;
        let (p, _, shb, _) = shb_for(src);
        let data = p.field_by_name("data").unwrap();
        let writes: Vec<_> = shb.traces[1]
            .accesses
            .iter()
            .filter(|a| matches!(a.key, MemKey::Field(_, f) if f == data))
            .collect();
        assert_eq!(writes.len(), 2);
        assert_ne!(writes[0].lockset, LockSetId::EMPTY, "locked write");
        assert_eq!(writes[1].lockset, LockSetId::EMPTY, "unlocked write");
        assert_ne!(writes[0].region, writes[1].region);
    }

    #[test]
    fn synchronized_methods_hold_this() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                sync method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                }
            }
        "#;
        let (p, _, shb, _) = shb_for(src);
        let data = p.field_by_name("data").unwrap();
        let w = shb.traces[1]
            .accesses
            .iter()
            .find(|a| matches!(a.key, MemKey::Field(_, f) if f == data))
            .unwrap();
        assert_ne!(w.lockset, LockSetId::EMPTY);
    }

    #[test]
    fn event_origins_carry_dispatcher_lock() {
        let src = r#"
            class G { field st; }
            class H impl EventHandler {
                method handleEvent(e) { G::st = e; }
            }
            class Main {
                static method main() {
                    h1 = new H();
                    h2 = new H();
                    e = new G();
                    h1.handleEvent(e);
                    h2.handleEvent(e);
                }
            }
        "#;
        let (_, pta, mut shb, _) = shb_for(src);
        // The two event origins' writes both hold the dispatcher lock, so
        // their locksets are NOT disjoint.
        let ev_origins: Vec<OriginId> = pta
            .arena
            .origins()
            .filter(|(_, d)| matches!(d.kind, o2_ir::OriginKind::Event { .. }))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(ev_origins.len(), 2);
        let w1 = shb.traces[ev_origins[0].0 as usize].accesses[0].lockset;
        let w2 = shb.traces[ev_origins[1].0 as usize].accesses[0].lockset;
        assert!(!shb.locks.disjoint(w1, w2), "same dispatcher serializes");
    }

    #[test]
    fn dispatcher_lock_can_be_disabled() {
        let src = r#"
            class G { field st; }
            class H impl EventHandler {
                method handleEvent(e) { G::st = e; }
            }
            class Main {
                static method main() {
                    h = new H();
                    e = new G();
                    h.handleEvent(e);
                }
            }
        "#;
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let cfg = ShbConfig {
            event_dispatcher_lock: false,
            ..Default::default()
        };
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &cfg,
            &mut LocTable::new(),
        );
        let ev = pta
            .arena
            .origins()
            .find(|(_, d)| matches!(d.kind, o2_ir::OriginKind::Event { .. }))
            .map(|(id, _)| id)
            .unwrap();
        assert_eq!(
            shb.traces[ev.0 as usize].accesses[0].lockset,
            LockSetId::EMPTY
        );
    }

    #[test]
    fn node_budget_truncates() {
        let (_, _, shb) = {
            let p = parse(FORK_JOIN).unwrap();
            let pta = analyze(
                &o2_ir::ProgramCtx::solo(&p),
                &PtaConfig::with_policy(Policy::origin1()),
            );
            let cfg = ShbConfig {
                node_budget: 1,
                ..Default::default()
            };
            let shb = build_shb(
                &o2_ir::ProgramCtx::solo(&p),
                &pta,
                &cfg,
                &mut LocTable::new(),
            );
            (p, pta, shb)
        };
        assert!(shb.traces[0].truncated);
    }

    #[test]
    fn access_index_covers_all_traces() {
        let (p, _, shb, locs) = shb_for(FORK_JOIN);
        let data = p.field_by_name("data").unwrap();
        let (loc, key) = locs
            .iter()
            .find(|(_, k)| matches!(k, MemKey::Field(_, f) if *f == data))
            .unwrap();
        assert!(matches!(key, MemKey::Field(..)));
        let origins: std::collections::BTreeSet<u32> =
            shb.accesses_of(loc).iter().map(|(o, _)| o.0).collect();
        assert_eq!(origins.len(), 2, "accessed from main and the thread");
    }

    #[test]
    fn reach_closure_agrees_with_happens_before() {
        let (_, _, shb, _) = shb_for(FORK_JOIN);
        for (oi, trace) in shb.traces.iter().enumerate() {
            for p in 0..trace.len {
                let a = (OriginId(oi as u32), p);
                let reach = shb.reach_closure(a);
                for (oj, tj) in shb.traces.iter().enumerate() {
                    if oi == oj {
                        continue;
                    }
                    for q in 0..tj.len {
                        let b = (OriginId(oj as u32), q);
                        assert_eq!(
                            shb.happens_before(a, b),
                            reach[oj] <= q,
                            "closure vs DFS disagree on {a:?} -> {b:?}"
                        );
                    }
                }
            }
        }
    }
}
