//! The static happens-before (SHB) graph with origins — Table 4 of the
//! paper, plus the first optimization of §4.1: intra-origin happens-before
//! is represented by monotonically increasing node ids instead of explicit
//! edges, so an intra-origin HB check is one integer comparison, and only
//! *inter-origin* edges (entry ⓬, join ⓭) are materialized.

use crate::locks::{LockElem, LockSetId, LockTable};
use o2_analysis::{LocId, LocTable, MemKey};
use o2_ir::ids::{GStmt, ProgramId};
use o2_ir::origins::OriginKind;
use o2_ir::program::{Program, Stmt};
use o2_ir::ProgramCtx;
use o2_pta::{CallTarget, Mi, ObjId, OriginId, PtaResult};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration for SHB construction.
#[derive(Clone, Debug)]
pub struct ShbConfig {
    /// Maximum number of nodes per origin trace; traces are truncated
    /// beyond this budget (and flagged).
    pub node_budget: usize,
    /// Maximum call depth while walking an origin's code paths.
    pub max_walk_depth: usize,
    /// Maximum `(method instance, lockset)` visits per origin; truncates
    /// the trace beyond it (guards against the method-instance explosion
    /// of deep object-sensitive pointer analyses).
    pub max_visited_methods: usize,
    /// If `true`, all accesses of an event origin carry the implicit
    /// per-dispatcher lock (§4.2), so handlers on the same dispatcher never
    /// race with each other.
    pub event_dispatcher_lock: bool,
    /// Treat the root (main) origin as running on this dispatcher. Used by
    /// the Android harness, where the synthetic `main` plays the UI
    /// thread: lifecycle callbacks must be serialized with the event
    /// handlers of the same dispatcher.
    pub main_dispatcher: Option<u16>,
    /// Wall-clock budget for the whole construction; traces are truncated
    /// when it expires.
    pub timeout: Option<Duration>,
}

impl Default for ShbConfig {
    fn default() -> Self {
        ShbConfig {
            node_budget: 1_000_000,
            max_walk_depth: 2_000,
            max_visited_methods: 100_000,
            event_dispatcher_lock: true,
            main_dispatcher: None,
            timeout: None,
        }
    }
}

/// A memory-access node in an origin's static trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessNode {
    /// The accessed memory location.
    pub key: MemKey,
    /// The access statement (for reporting).
    pub stmt: GStmt,
    /// `true` for writes.
    pub is_write: bool,
    /// Canonical lockset held at the access.
    pub lockset: LockSetId,
    /// Position in the origin's trace (intra-origin HB = position order).
    pub pos: u32,
    /// Lock-region sequence number (third optimization of §4.1): accesses
    /// with equal `(region, key, is_write)` are merged into one
    /// representative by the detector.
    pub region: u32,
}

/// An inter-origin `entry` edge: the parent's node at `pos` happens-before
/// everything in the child (Table 4 rule ⓬).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryEdge {
    /// Parent origin.
    pub parent: OriginId,
    /// Node position of the entry call in the parent's trace.
    pub pos: u32,
    /// Child origin.
    pub child: OriginId,
    /// The entry statement.
    pub stmt: GStmt,
}

/// An inter-origin `join` edge: everything in the child happens-before the
/// parent's node at `pos` (Table 4 rule ⓭).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinEdge {
    /// Joined (child) origin.
    pub child: OriginId,
    /// Parent origin performing the join.
    pub parent: OriginId,
    /// Node position of the join in the parent's trace.
    pub pos: u32,
    /// The join statement.
    pub stmt: GStmt,
}

/// A condition-variable wait or notify event recorded while walking one
/// origin. Events are collected during the walk and cross-matched into
/// [`CondEdge`]s at graph finish: every notify may be the one a wait on
/// an overlapping condition object returns from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CondEvent {
    /// The origin whose trace contains the event.
    pub origin: OriginId,
    /// Trace position (for waits: the wait-*return* node, which is what
    /// the notify happens-before).
    pub pos: u32,
    /// The `wait`/`notify` statement.
    pub stmt: GStmt,
    /// May-points-to set of the condition variable, sorted and deduped.
    /// Empty (unknown condition) means the event matches nothing — no
    /// happens-before is claimed, which is the sound direction.
    pub conds: Vec<ObjId>,
    /// `true` for notify-all; waits always carry `false`.
    pub all: bool,
}

/// An inter-origin condvar edge: the notifier's node at `from_pos`
/// happens-before the waiter's wait-return node at `to_pos`. Derived
/// from [`CondEvent`]s whose condition sets overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CondEdge {
    /// Notifying origin.
    pub from: OriginId,
    /// Position of the notify node in the notifier's trace.
    pub from_pos: u32,
    /// Waiting origin.
    pub to: OriginId,
    /// Position of the wait-return node in the waiter's trace.
    pub to_pos: u32,
    /// The notify statement.
    pub stmt: GStmt,
}

/// A lock acquisition in an origin's trace (used by the deadlock and
/// over-synchronization analyses built on top of the SHB graph).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcquireNode {
    /// Trace position of the acquisition.
    pub pos: u32,
    /// The acquiring statement (`MonitorEnter` or a synchronized method's
    /// first statement).
    pub stmt: GStmt,
    /// Lock elements acquired (the may-points-to set of the lock variable).
    pub elems: Vec<u32>,
    /// Canonical lockset held *before* this acquisition.
    pub held_before: LockSetId,
    /// Trace position of the matching release (`u32::MAX` while open).
    pub released_pos: u32,
}

/// The static trace of one origin.
#[derive(Clone, Debug, Default)]
pub struct OriginTrace {
    /// Access nodes in position order.
    pub accesses: Vec<AccessNode>,
    /// Lock acquisitions in position order.
    pub acquires: Vec<AcquireNode>,
    /// Total number of nodes (accesses + entry + join nodes).
    pub len: u32,
    /// `true` if the node budget truncated this trace.
    pub truncated: bool,
}

/// Construction statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShbStats {
    /// Total nodes across all traces.
    pub num_nodes: u64,
    /// Total access nodes.
    pub num_accesses: u64,
    /// Number of entry edges.
    pub num_entry_edges: usize,
    /// Number of join edges.
    pub num_join_edges: usize,
    /// Number of condvar (notify → wait-return) edges.
    pub num_cond_edges: usize,
    /// Number of canonical locksets.
    pub num_locksets: usize,
}

/// Compressed-sparse-row adjacency over the entry edges, bucketed by
/// parent origin. The frozen graph is traversed millions of times per
/// detect run but never mutated, so the per-origin `Vec<Vec<usize>>`
/// buckets are flattened into three parallel arrays scanned by an
/// `offsets[o]..offsets[o+1]` slice: one contiguous cache line per origin
/// instead of a pointer chase per bucket, and no per-edge indirection
/// through `entry_edges` on the hot path (the fields the DFS needs are
/// inlined into the row).
#[derive(Debug, Default)]
pub struct EntryCsr {
    /// `offsets[o]..offsets[o + 1]` is origin `o`'s row; length
    /// `num_origins + 1`.
    pub offsets: Vec<u32>,
    /// Entry position in the parent's trace, parallel to the row.
    pub pos: Vec<u32>,
    /// Raw child origin id, parallel to the row.
    pub child: Vec<u32>,
    /// Index into [`ShbGraph::entry_edges`] (for reporting walks that need
    /// the full edge), parallel to the row.
    pub edge_idx: Vec<u32>,
}

impl EntryCsr {
    /// Builds the CSR from the edge list via a stable counting sort, so
    /// each row keeps edge-emission order.
    fn build(num_origins: usize, edges: &[EntryEdge]) -> EntryCsr {
        let mut offsets = vec![0u32; num_origins + 1];
        for e in edges {
            offsets[e.parent.0 as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..num_origins].to_vec();
        let n = edges.len();
        let (mut pos, mut child, mut edge_idx) = (vec![0u32; n], vec![0u32; n], vec![0u32; n]);
        for (i, e) in edges.iter().enumerate() {
            let slot = cursor[e.parent.0 as usize] as usize;
            cursor[e.parent.0 as usize] += 1;
            pos[slot] = e.pos;
            child[slot] = e.child.0;
            edge_idx[slot] = i as u32;
        }
        EntryCsr {
            offsets,
            pos,
            child,
            edge_idx,
        }
    }

    /// The row of origin `o` as an index range into the parallel arrays.
    #[inline]
    pub fn row(&self, o: OriginId) -> std::ops::Range<usize> {
        self.offsets[o.0 as usize] as usize..self.offsets[o.0 as usize + 1] as usize
    }

    fn approx_bytes(&self) -> usize {
        (self.offsets.capacity() + self.pos.capacity() + self.child.capacity())
            .saturating_add(self.edge_idx.capacity())
            * 4
    }
}

/// CSR adjacency over the join edges, bucketed by child origin (a join
/// edge is traversed child → parent). Same layout rationale as
/// [`EntryCsr`].
#[derive(Debug, Default)]
pub struct JoinCsr {
    /// `offsets[o]..offsets[o + 1]` is origin `o`'s row.
    pub offsets: Vec<u32>,
    /// Join position in the parent's trace, parallel to the row.
    pub pos: Vec<u32>,
    /// Raw parent origin id, parallel to the row.
    pub parent: Vec<u32>,
}

impl JoinCsr {
    fn build(num_origins: usize, edges: &[JoinEdge]) -> JoinCsr {
        let mut offsets = vec![0u32; num_origins + 1];
        for j in edges {
            offsets[j.child.0 as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..num_origins].to_vec();
        let n = edges.len();
        let (mut pos, mut parent) = (vec![0u32; n], vec![0u32; n]);
        for j in edges {
            let slot = cursor[j.child.0 as usize] as usize;
            cursor[j.child.0 as usize] += 1;
            pos[slot] = j.pos;
            parent[slot] = j.parent.0;
        }
        JoinCsr {
            offsets,
            pos,
            parent,
        }
    }

    /// The row of origin `o` as an index range into the parallel arrays.
    #[inline]
    pub fn row(&self, o: OriginId) -> std::ops::Range<usize> {
        self.offsets[o.0 as usize] as usize..self.offsets[o.0 as usize + 1] as usize
    }

    fn approx_bytes(&self) -> usize {
        (self.offsets.capacity() + self.pos.capacity() + self.parent.capacity()) * 4
    }
}

/// CSR adjacency over the condvar edges, bucketed by notifying origin (a
/// cond edge is traversed notifier → waiter). Same layout rationale as
/// [`EntryCsr`].
#[derive(Debug, Default)]
pub struct CondCsr {
    /// `offsets[o]..offsets[o + 1]` is origin `o`'s row.
    pub offsets: Vec<u32>,
    /// Notify position in the notifier's trace, parallel to the row.
    pub pos: Vec<u32>,
    /// Raw waiter origin id, parallel to the row.
    pub to: Vec<u32>,
    /// Wait-return position in the waiter's trace, parallel to the row.
    pub to_pos: Vec<u32>,
}

impl CondCsr {
    fn build(num_origins: usize, edges: &[CondEdge]) -> CondCsr {
        let mut offsets = vec![0u32; num_origins + 1];
        for e in edges {
            offsets[e.from.0 as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..num_origins].to_vec();
        let n = edges.len();
        let (mut pos, mut to, mut to_pos) = (vec![0u32; n], vec![0u32; n], vec![0u32; n]);
        for e in edges {
            let slot = cursor[e.from.0 as usize] as usize;
            cursor[e.from.0 as usize] += 1;
            pos[slot] = e.from_pos;
            to[slot] = e.to.0;
            to_pos[slot] = e.to_pos;
        }
        CondCsr {
            offsets,
            pos,
            to,
            to_pos,
        }
    }

    /// The row of origin `o` as an index range into the parallel arrays.
    #[inline]
    pub fn row(&self, o: OriginId) -> std::ops::Range<usize> {
        self.offsets[o.0 as usize] as usize..self.offsets[o.0 as usize + 1] as usize
    }

    fn approx_bytes(&self) -> usize {
        (self.offsets.capacity() + self.pos.capacity() + self.to.capacity())
            .saturating_add(self.to_pos.capacity())
            * 4
    }
}

/// The SHB graph: per-origin traces plus inter-origin edges.
#[derive(Debug)]
pub struct ShbGraph {
    /// The program this graph's dense ids (origins, `LocId`s, lockset
    /// ids) belong to — the namespace of the [`ProgramCtx`] it was built
    /// under. Detection asserts agreement before consuming the graph.
    pub program_id: ProgramId,
    /// Traces indexed by raw origin id.
    pub traces: Vec<OriginTrace>,
    /// Canonical lockset table (mutable for its disjointness cache).
    pub locks: LockTable,
    /// All entry edges.
    pub entry_edges: Vec<EntryEdge>,
    /// All join edges.
    pub join_edges: Vec<JoinEdge>,
    /// All condvar edges (derived from wait/notify events at finish).
    pub cond_edges: Vec<CondEdge>,
    /// CSR adjacency of entry edges by parent origin.
    pub entry_csr: EntryCsr,
    /// CSR adjacency of join edges by child origin.
    pub join_csr: JoinCsr,
    /// CSR adjacency of condvar edges by notifying origin.
    pub cond_csr: CondCsr,
    /// Dense access index: [`LocId`] → list of `(origin, index into
    /// `traces\[origin\].accesses`)`. Ids come from the run's shared
    /// [`LocTable`] (the one `build_shb` interned into), so a slot here
    /// lines up with the same location's OSA sharing entry.
    pub accesses_by_loc: Vec<Vec<(OriginId, u32)>>,
    /// Construction statistics.
    pub stats: ShbStats,
    /// Wall-clock construction time.
    pub duration: Duration,
}

impl ShbGraph {
    /// Intra- and inter-origin happens-before query between two trace
    /// positions: does `(a_origin, a_pos)` happen before `(b_origin, b_pos)`?
    ///
    /// Intra-origin is an integer comparison; inter-origin is a DFS over
    /// entry/join edges with per-origin minimal-position pruning.
    pub fn happens_before(&self, a: (OriginId, u32), b: (OriginId, u32)) -> bool {
        if a.0 == b.0 {
            return a.1 < b.1;
        }
        // Origin ids are dense and small; a flat vector beats a hash map
        // for the per-origin minimal-position pruning.
        let mut best: Vec<u32> = vec![u32::MAX; self.traces.len()];
        let mut stack: Vec<(OriginId, u32)> = vec![(a.0, a.1)];
        while let Some((o, p)) = stack.pop() {
            if best[o.0 as usize] <= p {
                continue;
            }
            best[o.0 as usize] = p;
            if o == b.0 && p <= b.1 {
                return true;
            }
            for k in self.entry_csr.row(o) {
                if self.entry_csr.pos[k] >= p {
                    stack.push((OriginId(self.entry_csr.child[k]), 0));
                }
            }
            // A join edge is usable from any position in the child (the
            // child's last node is at or after every position).
            for k in self.join_csr.row(o) {
                stack.push((OriginId(self.join_csr.parent[k]), self.join_csr.pos[k]));
            }
            // A cond edge at or after `p` orders this node before the
            // waiter's wait-return node (Table 4 style: notify ⟶ wait).
            for k in self.cond_csr.row(o) {
                if self.cond_csr.pos[k] >= p {
                    stack.push((OriginId(self.cond_csr.to[k]), self.cond_csr.to_pos[k]));
                }
            }
        }
        false
    }

    /// The straw-man happens-before used by the naive baseline: the same
    /// relation, computed by walking the trace node-by-node and scanning
    /// the edge lists at every node (what explicit intra-origin HB edges
    /// cost before the §4.1 integer-id optimization).
    pub fn happens_before_naive(&self, a: (OriginId, u32), b: (OriginId, u32)) -> bool {
        if a.0 == b.0 {
            // Walk positions one at a time, as a DFS over explicit
            // intra-origin edges would.
            let mut p = a.1;
            let len = self.traces[a.0 .0 as usize].len;
            while p < len {
                if p == b.1 && a.1 != b.1 {
                    return true;
                }
                p += 1;
            }
            return false;
        }
        let mut visited: HashSet<(u32, u32)> = HashSet::new();
        let mut stack: Vec<(OriginId, u32)> = vec![(a.0, a.1)];
        while let Some((o, start)) = stack.pop() {
            if !visited.insert((o.0, start)) {
                continue;
            }
            if o == b.0 && start <= b.1 {
                return true;
            }
            // Step through every node position, scanning all edges at each
            // step (the redundant traversal the paper optimizes away).
            let len = self.traces[o.0 as usize].len;
            let mut p = start;
            while p < len {
                for e in &self.entry_edges {
                    if e.parent == o && e.pos == p {
                        stack.push((e.child, 0));
                    }
                }
                for c in &self.cond_edges {
                    if c.from == o && c.from_pos == p {
                        stack.push((c.to, c.to_pos));
                    }
                }
                p += 1;
            }
            for j in &self.join_edges {
                if j.child == o {
                    stack.push((j.parent, j.pos));
                }
            }
        }
        false
    }

    /// Renders the origin-level SHB graph in Graphviz dot format: one node
    /// per origin (labeled with kind and trace size), entry edges solid,
    /// join edges dashed.
    pub fn to_dot(&self, pta: &PtaResult) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph shb {\n  node [shape=ellipse, fontsize=10];\n");
        for (origin, data) in pta.arena.origins() {
            let t = &self.traces[origin.0 as usize];
            let _ = writeln!(
                out,
                "  o{} [label=\"O{} {} ({} accesses)\"];",
                origin.0,
                origin.0,
                data.kind,
                t.accesses.len()
            );
        }
        for e in &self.entry_edges {
            let _ = writeln!(
                out,
                "  o{} -> o{} [label=\"@{}\"];",
                e.parent.0, e.child.0, e.pos
            );
        }
        for j in &self.join_edges {
            let _ = writeln!(
                out,
                "  o{} -> o{} [style=dashed, label=\"join@{}\"];",
                j.child.0, j.parent.0, j.pos
            );
        }
        for c in &self.cond_edges {
            let _ = writeln!(
                out,
                "  o{} -> o{} [style=dotted, label=\"notify@{}\"];",
                c.from.0, c.to.0, c.from_pos
            );
        }
        out.push_str("}\n");
        out
    }

    /// Entry edges leaving `origin`.
    pub fn entries_of(&self, origin: OriginId) -> impl Iterator<Item = &EntryEdge> {
        self.entry_csr
            .row(origin)
            .map(move |k| &self.entry_edges[self.entry_csr.edge_idx[k] as usize])
    }

    /// Trace positions of every access to one interned location, empty if
    /// the walk never touched it.
    pub fn accesses_of(&self, loc: LocId) -> &[(OriginId, u32)] {
        self.accesses_by_loc
            .get(loc.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The full inter-origin reachability closure of one trace position:
    /// `result[o]` is the minimal position in origin `o` reachable from
    /// `from` over entry/join edges (`u32::MAX` if unreachable).
    ///
    /// This is [`ShbGraph::happens_before`]'s DFS run to fixpoint instead
    /// of stopping at the query target: for `b.0 != from.0`,
    /// `happens_before(from, b)` ⟺ `result[b.0] <= b.1`. Detect workers
    /// memoize these vectors per source position, turning the per-pair HB
    /// query of a candidate into one indexed comparison.
    pub fn reach_closure(&self, from: (OriginId, u32)) -> Vec<u32> {
        let mut best: Vec<u32> = vec![u32::MAX; self.traces.len()];
        let mut stack: Vec<(OriginId, u32)> = vec![from];
        while let Some((o, p)) = stack.pop() {
            if best[o.0 as usize] <= p {
                continue;
            }
            best[o.0 as usize] = p;
            for k in self.entry_csr.row(o) {
                if self.entry_csr.pos[k] >= p {
                    stack.push((OriginId(self.entry_csr.child[k]), 0));
                }
            }
            for k in self.join_csr.row(o) {
                stack.push((OriginId(self.join_csr.parent[k]), self.join_csr.pos[k]));
            }
            for k in self.cond_csr.row(o) {
                if self.cond_csr.pos[k] >= p {
                    stack.push((OriginId(self.cond_csr.to[k]), self.cond_csr.to_pos[k]));
                }
            }
        }
        best
    }

    /// Approximate heap bytes of the frozen graph, broken down by
    /// structure: `(traces, csr, locks, accesses_by_loc)`.
    pub fn approx_bytes(&self) -> (usize, usize, usize, usize) {
        let traces: usize = self
            .traces
            .iter()
            .map(|t| {
                t.accesses.capacity() * std::mem::size_of::<AccessNode>()
                    + t.acquires.capacity() * std::mem::size_of::<AcquireNode>()
                    + t.acquires
                        .iter()
                        .map(|a| a.elems.capacity() * 4)
                        .sum::<usize>()
            })
            .sum::<usize>()
            + self.traces.capacity() * std::mem::size_of::<OriginTrace>();
        let csr = self.entry_csr.approx_bytes()
            + self.join_csr.approx_bytes()
            + self.cond_csr.approx_bytes()
            + self.entry_edges.capacity() * std::mem::size_of::<EntryEdge>()
            + self.join_edges.capacity() * std::mem::size_of::<JoinEdge>()
            + self.cond_edges.capacity() * std::mem::size_of::<CondEdge>();
        let locks = self.locks.approx_bytes();
        let by_loc = self
            .accesses_by_loc
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<(OriginId, u32)>())
            .sum::<usize>()
            + self.accesses_by_loc.capacity() * std::mem::size_of::<Vec<(OriginId, u32)>>();
        (traces, csr, locks, by_loc)
    }
}

/// Builds the SHB graph from a pointer-analysis result, interning every
/// accessed location into `locs` — normally the table the preceding OSA
/// run minted, so that one id space spans both stages. (The walk can
/// still intern locations OSA never saw, e.g. after a truncated scan.)
pub fn build_shb(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    config: &ShbConfig,
    locs: &mut LocTable,
) -> ShbGraph {
    debug_assert_eq!(
        pta.program_id,
        ctx.id(),
        "build_shb: PtaResult from a different ProgramCtx"
    );
    debug_assert_eq!(
        locs.program(),
        ctx.id(),
        "build_shb: LocTable from a different ProgramCtx"
    );
    let start = Instant::now();
    let mut builder = Builder::new(ctx.program(), pta, config, locs, start);
    for (origin, _) in pta.arena.origins() {
        builder.walk_origin(origin);
    }
    builder.finish(start)
}

/// Sorted-slice intersection test (condition points-to sets are sorted
/// and deduped when recorded).
fn sorted_overlap(a: &[ObjId], b: &[ObjId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

pub(crate) struct Builder<'a> {
    pub(crate) program: &'a Program,
    pub(crate) pta: &'a PtaResult,
    pub(crate) config: &'a ShbConfig,
    pub(crate) locks: LockTable,
    pub(crate) locs: &'a mut LocTable,
    pub(crate) traces: Vec<OriginTrace>,
    pub(crate) entry_edges: Vec<EntryEdge>,
    pub(crate) join_edges: Vec<JoinEdge>,
    pub(crate) wait_events: Vec<CondEvent>,
    pub(crate) notify_events: Vec<CondEvent>,
    pub(crate) accesses_by_loc: Vec<Vec<(OriginId, u32)>>,
    pub(crate) fresh_lock_counter: u32,
    pub(crate) deadline: Option<Instant>,
    pub(crate) visit_ticks: u64,
}

struct WalkState {
    origin: OriginId,
    pos: u32,
    region: u32,
    lock_stack: Vec<Vec<u32>>,
    open_acquires: Vec<usize>,
    current_set: LockSetId,
    dispatcher_elem: Option<u32>,
    /// Memoized method visits. The third component is the *inter-origin
    /// epoch*: the number of entry/join edges emitted so far in this
    /// origin's trace. A method already walked is re-walked after a new
    /// inter-origin edge, because only those edges change the cross-origin
    /// happens-before status of its accesses — recording only the first
    /// call would falsely order post-spawn accesses before the spawn.
    visited: HashSet<(Mi, LockSetId, u32)>,
    inter_epoch: u32,
    truncated: bool,
}

impl<'a> Builder<'a> {
    pub(crate) fn new(
        program: &'a Program,
        pta: &'a PtaResult,
        config: &'a ShbConfig,
        locs: &'a mut LocTable,
        start: Instant,
    ) -> Builder<'a> {
        let accesses_by_loc = vec![Vec::new(); locs.len()];
        Builder {
            program,
            pta,
            config,
            locks: LockTable::new(),
            locs,
            traces: vec![OriginTrace::default(); pta.num_origins()],
            entry_edges: Vec::new(),
            join_edges: Vec::new(),
            wait_events: Vec::new(),
            notify_events: Vec::new(),
            accesses_by_loc,
            fresh_lock_counter: 0,
            deadline: config.timeout.map(|t| start + t),
            visit_ticks: 0,
        }
    }

    pub(crate) fn finish(self, start: Instant) -> ShbGraph {
        let num_origins = self.traces.len();
        let entry_csr = EntryCsr::build(num_origins, &self.entry_edges);
        let join_csr = JoinCsr::build(num_origins, &self.join_edges);
        // Cross-match notify × wait into condvar edges: a notify may be
        // the one a wait in *another* origin returns from whenever their
        // condition points-to sets overlap. Same-origin pairs add nothing
        // (intra-origin HB is already position order). The event lists
        // are in walk order, so the edge list — and the CSR built from
        // it — is deterministic.
        let mut cond_edges = Vec::new();
        for n in &self.notify_events {
            for w in &self.wait_events {
                if n.origin != w.origin && sorted_overlap(&n.conds, &w.conds) {
                    cond_edges.push(CondEdge {
                        from: n.origin,
                        from_pos: n.pos,
                        to: w.origin,
                        to_pos: w.pos,
                        stmt: n.stmt,
                    });
                }
            }
        }
        let cond_csr = CondCsr::build(num_origins, &cond_edges);
        let stats = ShbStats {
            num_nodes: self.traces.iter().map(|t| t.len as u64).sum(),
            num_accesses: self.traces.iter().map(|t| t.accesses.len() as u64).sum(),
            num_entry_edges: self.entry_edges.len(),
            num_join_edges: self.join_edges.len(),
            num_cond_edges: cond_edges.len(),
            num_locksets: self.locks.num_sets(),
        };
        ShbGraph {
            program_id: self.locs.program(),
            traces: self.traces,
            locks: self.locks,
            entry_edges: self.entry_edges,
            join_edges: self.join_edges,
            cond_edges,
            entry_csr,
            join_csr,
            cond_csr,
            accesses_by_loc: self.accesses_by_loc,
            stats,
            duration: start.elapsed(),
        }
    }

    pub(crate) fn walk_origin(&mut self, origin: OriginId) {
        let kind = self.pta.arena.origin_data(origin).kind;
        let dispatcher_elem = match kind {
            OriginKind::Event { dispatcher } if self.config.event_dispatcher_lock => {
                Some(self.locks.elem(LockElem::Dispatcher(dispatcher)))
            }
            OriginKind::Main => self
                .config
                .main_dispatcher
                .map(|d| self.locks.elem(LockElem::Dispatcher(d))),
            // A single-worker executor serializes its tasks exactly like
            // an event dispatcher serializes handlers; multiple workers
            // run tasks preemptively and get no implicit lock.
            OriginKind::AsyncTask { executor, workers }
                if workers <= 1 && self.config.event_dispatcher_lock =>
            {
                Some(self.locks.elem(LockElem::Executor(executor)))
            }
            _ => None,
        };
        let mut st = WalkState {
            origin,
            pos: 0,
            region: 0,
            lock_stack: Vec::new(),
            open_acquires: Vec::new(),
            current_set: LockSetId::EMPTY,
            dispatcher_elem,
            visited: HashSet::new(),
            inter_epoch: 0,
            truncated: false,
        };
        st.current_set = self.recompute_lockset(&st);
        let entries: Vec<Mi> = self.pta.origin_entries(origin).to_vec();
        for mi in entries {
            self.walk_method(&mut st, mi, 0);
        }
        let t = &mut self.traces[origin.0 as usize];
        t.len = st.pos;
        t.truncated = st.truncated;
    }

    fn recompute_lockset(&mut self, st: &WalkState) -> LockSetId {
        let mut elems: Vec<u32> = st.lock_stack.iter().flatten().copied().collect();
        if let Some(d) = st.dispatcher_elem {
            elems.push(d);
        }
        self.locks.set(elems)
    }

    fn lock_elems_for_var(&mut self, mi: Mi, var: o2_ir::ids::VarId, stmt: GStmt) -> Vec<u32> {
        let pts = self.pta.pts_var(mi, var);
        if pts.is_empty() {
            // Unknown lock: a fresh element, distinct from everything —
            // sound (protects nothing in common).
            self.fresh_lock_counter += 1;
            let id = self
                .locks
                .elem(LockElem::Obj(ObjId(u32::MAX - self.fresh_lock_counter)));
            let _ = stmt;
            vec![id]
        } else {
            pts.iter()
                .map(|&o| self.locks.elem(LockElem::Obj(ObjId(o))))
                .collect()
        }
    }

    /// Like [`Builder::lock_elems_for_var`] but for a reader-writer lock:
    /// every points-to object maps to its mode-specific element, and an
    /// unknown lock draws a fresh object that still keeps its mode — a
    /// fresh read-side guard must never protect a write.
    fn rw_lock_elems_for_var(
        &mut self,
        mi: Mi,
        var: o2_ir::ids::VarId,
        mode: o2_ir::program::RwMode,
    ) -> Vec<u32> {
        let wrap = |o: ObjId| match mode {
            o2_ir::program::RwMode::Read => LockElem::RwRead(o),
            o2_ir::program::RwMode::Write => LockElem::RwWrite(o),
        };
        let pts = self.pta.pts_var(mi, var);
        if pts.is_empty() {
            self.fresh_lock_counter += 1;
            let id = self
                .locks
                .elem(wrap(ObjId(u32::MAX - self.fresh_lock_counter)));
            vec![id]
        } else {
            pts.iter()
                .map(|&o| self.locks.elem(wrap(ObjId(o))))
                .collect()
        }
    }

    /// May-points-to set of a condition variable, sorted and deduped for
    /// the edge cross-match. An empty set stays empty: an unknown
    /// condition claims no happens-before.
    fn cond_objects(&self, mi: Mi, var: o2_ir::ids::VarId) -> Vec<ObjId> {
        let mut conds: Vec<ObjId> = self
            .pta
            .pts_var(mi, var)
            .iter()
            .map(|&o| ObjId(o))
            .collect();
        conds.sort_unstable();
        conds.dedup();
        conds
    }

    fn record_acquire(&mut self, st: &mut WalkState, stmt: GStmt, elems: Vec<u32>) {
        let idx = self.traces[st.origin.0 as usize].acquires.len();
        self.traces[st.origin.0 as usize]
            .acquires
            .push(AcquireNode {
                pos: st.pos,
                stmt,
                elems,
                held_before: st.current_set,
                released_pos: u32::MAX,
            });
        st.open_acquires.push(idx);
        st.pos += 1;
    }

    fn record_release(&mut self, st: &mut WalkState) {
        if let Some(idx) = st.open_acquires.pop() {
            self.traces[st.origin.0 as usize].acquires[idx].released_pos = st.pos;
            st.pos += 1;
        }
    }

    fn record_access(&mut self, st: &mut WalkState, key: MemKey, stmt: GStmt, is_write: bool) {
        if st.pos as usize >= self.config.node_budget {
            st.truncated = true;
            return;
        }
        let node = AccessNode {
            key,
            stmt,
            is_write,
            lockset: st.current_set,
            pos: st.pos,
            region: st.region,
        };
        st.pos += 1;
        let idx = self.traces[st.origin.0 as usize].accesses.len() as u32;
        self.traces[st.origin.0 as usize].accesses.push(node);
        let loc = self.locs.intern(key);
        if loc.index() >= self.accesses_by_loc.len() {
            self.accesses_by_loc.resize_with(loc.index() + 1, Vec::new);
        }
        self.accesses_by_loc[loc.index()].push((st.origin, idx));
    }

    fn walk_method(&mut self, st: &mut WalkState, mi: Mi, depth: usize) {
        if st.truncated {
            return;
        }
        if st.visited.len() >= self.config.max_visited_methods {
            st.truncated = true;
            return;
        }
        if depth > self.config.max_walk_depth {
            st.truncated = true;
            return;
        }
        self.visit_ticks += 1;
        if self.visit_ticks.is_multiple_of(256) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    st.truncated = true;
                    return;
                }
            }
        }
        if !st.visited.insert((mi, st.current_set, st.inter_epoch)) {
            return;
        }
        let (method_id, _) = self.pta.mi_data(mi);
        let method = self.program.method(method_id);
        let synced = method.is_synchronized;
        if synced {
            let elems = if method.is_static {
                vec![self.locks.elem(LockElem::Class(method.class))]
            } else {
                self.lock_elems_for_var(mi, o2_ir::ids::VarId(0), GStmt::new(method_id, 0))
            };
            // The acquisition site of a synchronized method is the method
            // entry itself; key it one past the body so it cannot collide
            // with the first statement's GStmt (Program::stmt_label renders
            // out-of-range indexes as the method entry).
            self.record_acquire(st, GStmt::new(method_id, method.body.len()), elems.clone());
            st.lock_stack.push(elems);
            st.current_set = self.recompute_lockset(st);
            st.region += 1;
        }
        for (idx, instr) in method.body.iter().enumerate() {
            if st.truncated {
                break;
            }
            let g = GStmt::new(method_id, idx);
            if let Some((base, field, is_write)) = instr.stmt.field_access() {
                let atomic = instr.stmt.is_atomic_access();
                for &obj in self.pta.pts_var(mi, base) {
                    let key = MemKey::Field(ObjId(obj), field);
                    if atomic {
                        // Atomic accesses hold the cell's implicit lock.
                        let elem = self.locks.elem(LockElem::AtomicCell(ObjId(obj), field));
                        let base_elems: Vec<u32> = self.locks.set_elems(st.current_set).to_vec();
                        let mut elems = base_elems;
                        elems.push(elem);
                        let save = st.current_set;
                        st.current_set = self.locks.set(elems);
                        st.region += 1;
                        self.record_access(st, key, g, is_write);
                        st.current_set = save;
                        st.region += 1;
                    } else {
                        self.record_access(st, key, g, is_write);
                    }
                }
                continue;
            }
            if let Some((class, field, is_write)) = instr.stmt.static_access() {
                self.record_access(st, MemKey::Static(class, field), g, is_write);
                continue;
            }
            match &instr.stmt {
                Stmt::MonitorEnter { var } => {
                    let elems = self.lock_elems_for_var(mi, *var, g);
                    self.record_acquire(st, g, elems.clone());
                    st.lock_stack.push(elems);
                    st.current_set = self.recompute_lockset(st);
                    st.region += 1;
                }
                Stmt::MonitorExit { .. } => {
                    st.lock_stack.pop();
                    self.record_release(st);
                    st.current_set = self.recompute_lockset(st);
                    st.region += 1;
                }
                Stmt::RwEnter { var, mode } => {
                    let elems = self.rw_lock_elems_for_var(mi, *var, *mode);
                    self.record_acquire(st, g, elems.clone());
                    st.lock_stack.push(elems);
                    st.current_set = self.recompute_lockset(st);
                    st.region += 1;
                }
                Stmt::RwExit { .. } => {
                    st.lock_stack.pop();
                    self.record_release(st);
                    st.current_set = self.recompute_lockset(st);
                    st.region += 1;
                }
                Stmt::Wait { cond, .. } => {
                    // The wait blocks, releases its lock, and reacquires
                    // before returning: the node recorded here is the
                    // wait-*return*, the target of notify edges. It splits
                    // the enclosing critical section — accesses before and
                    // after it land in different lock regions — and starts
                    // a new inter-origin epoch (incoming cond edges change
                    // the HB status of everything after it).
                    let conds = self.cond_objects(mi, *cond);
                    self.wait_events.push(CondEvent {
                        origin: st.origin,
                        pos: st.pos,
                        stmt: g,
                        conds,
                        all: false,
                    });
                    st.pos += 1;
                    st.region += 1;
                    st.inter_epoch += 1;
                }
                Stmt::Notify { cond, all } => {
                    let conds = self.cond_objects(mi, *cond);
                    self.notify_events.push(CondEvent {
                        origin: st.origin,
                        pos: st.pos,
                        stmt: g,
                        conds,
                        all: *all,
                    });
                    st.pos += 1;
                    st.region += 1;
                    st.inter_epoch += 1;
                }
                Stmt::Await => {
                    // A suspension point hands the worker back to the
                    // executor: accesses on either side must not be merged
                    // into one loop representative, but no happens-before
                    // edge is created here (task ordering comes from the
                    // executor element and entry edges).
                    st.region += 1;
                }
                Stmt::Call { .. } | Stmt::New { .. } | Stmt::Spawn { .. } => {
                    let targets: Vec<CallTarget> = self.pta.callees(mi, idx).to_vec();
                    for t in targets {
                        match t {
                            CallTarget::Normal(callee) => {
                                self.walk_method(st, callee, depth + 1);
                            }
                            CallTarget::Entry { origin: child, .. }
                            | CallTarget::SpawnEntry { origin: child, .. } => {
                                // Entry node: parent's position happens-
                                // before everything in the child.
                                self.entry_edges.push(EntryEdge {
                                    parent: st.origin,
                                    pos: st.pos,
                                    child,
                                    stmt: g,
                                });
                                st.pos += 1;
                                st.region += 1;
                                st.inter_epoch += 1;
                            }
                        }
                    }
                }
                Stmt::Join { .. } => {
                    let joined: Vec<OriginId> = self.pta.joined_origins(mi, idx).to_vec();
                    for child in joined {
                        self.join_edges.push(JoinEdge {
                            child,
                            parent: st.origin,
                            pos: st.pos,
                            stmt: g,
                        });
                        st.pos += 1;
                        st.region += 1;
                        st.inter_epoch += 1;
                    }
                }
                _ => {}
            }
        }
        if synced {
            st.lock_stack.pop();
            self.record_release(st);
            st.current_set = self.recompute_lockset(st);
            st.region += 1;
        }
        // Allow re-walking this method when encountered under a different
        // lockset later; keep it visited for the same lockset.
    }
}
