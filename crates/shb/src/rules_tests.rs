//! Per-rule tests for the Table 4 SHB construction rules: each test
//! isolates one rule and checks the trace/edge structure it produces.

#![cfg(test)]

use crate::{build_shb, LockSetId, ShbConfig, ShbGraph};
use o2_analysis::{LocTable, MemKey};
use o2_ir::parser::parse;
use o2_pta::{analyze, OriginId, Policy, PtaConfig};

fn shb(src: &str) -> (o2_ir::Program, ShbGraph) {
    let p = parse(src).unwrap();
    let pta = analyze(
        &o2_ir::ProgramCtx::solo(&p),
        &PtaConfig::with_policy(Policy::origin1()),
    );
    let g = build_shb(
        &o2_ir::ProgramCtx::solo(&p),
        &pta,
        &ShbConfig::default(),
        &mut LocTable::new(),
    );
    (p, g)
}

/// Rules ⓮/⓯: field writes and reads become write/read nodes, one per
/// pointed-to object, in program order.
#[test]
fn rules_14_15_field_access_nodes() {
    let src = r#"
        class C { field f; }
        class Main {
            static method main() {
                x = new C();
                x.f = x;
                y = x.f;
            }
        }
    "#;
    let (p, g) = shb(src);
    let f = p.field_by_name("f").unwrap();
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let nodes: Vec<_> = root
        .accesses
        .iter()
        .filter(|a| matches!(a.key, MemKey::Field(_, ff) if ff == f))
        .collect();
    assert_eq!(nodes.len(), 2);
    assert!(nodes[0].is_write);
    assert!(!nodes[1].is_write);
    assert!(
        nodes[0].pos < nodes[1].pos,
        "program order = position order"
    );
}

/// Rules ⓰/⓱: array accesses produce nodes on the `*` field.
#[test]
fn rules_16_17_array_access_nodes() {
    let src = r#"
        class C { }
        class Main {
            static method main() {
                a = newarray;
                v = new C();
                a[*] = v;
                w = a[*];
            }
        }
    "#;
    let (_, g) = shb(src);
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let stars: Vec<_> = root
        .accesses
        .iter()
        .filter(|a| matches!(a.key, MemKey::Field(_, f) if f == o2_ir::ARRAY_FIELD))
        .collect();
    assert_eq!(stars.len(), 2);
    assert!(stars[0].is_write && !stars[1].is_write);
}

/// Rule ⓲: calls inline the callee's nodes between the caller's
/// surrounding nodes (call → f_first, f_last → call_next).
#[test]
fn rule_18_call_nodes_in_order() {
    let src = r#"
        class C { field pre; field inner; field post; }
        class Lib { static method touch(x) { x.inner = x; } }
        class Main {
            static method main() {
                x = new C();
                x.pre = x;
                Lib::touch(x);
                x.post = x;
            }
        }
    "#;
    let (p, g) = shb(src);
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let pos_of = |name: &str| {
        let f = p.field_by_name(name).unwrap();
        root.accesses
            .iter()
            .find(|a| matches!(a.key, MemKey::Field(_, ff) if ff == f))
            .unwrap()
            .pos
    };
    let (pre, inner, post) = (pos_of("pre"), pos_of("inner"), pos_of("post"));
    assert!(pre < inner, "callee nodes come after the call");
    assert!(inner < post, "callee nodes come before the continuation");
}

/// Rule ⓳: `synchronized` produces lock/unlock effects — accesses inside
/// carry the monitor's objects in their lockset, one lockset per
/// points-to target of the lock variable.
#[test]
fn rule_19_lock_nodes_per_object() {
    let src = r#"
        class C { field f; }
        class L { }
        class Main {
            static method main() {
                x = new C();
                l1 = new L();
                l2 = new L();
                l = l1;
                l = l2;
                sync (l) { x.f = x; }
            }
        }
    "#;
    let (p, g) = shb(src);
    let f = p.field_by_name("f").unwrap();
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let w = root
        .accesses
        .iter()
        .find(|a| matches!(a.key, MemKey::Field(_, ff) if ff == f))
        .unwrap();
    // The lock variable may point to either L object: both are in the
    // lockset (may-lock, as in the paper's rule ∀⟨o,Ok⟩ ∈ pts(x)).
    assert_eq!(g.locks.set_elems(w.lockset).len(), 2);
}

/// Rule ⓬ (inter-origin): `x.entry(..)` produces an entry edge from the
/// parent's position to the child origin.
#[test]
fn rule_20_entry_edge() {
    let src = r#"
        class W impl Runnable { method run() { } }
        class Main {
            static method main() {
                w = new W();
                w.start();
            }
        }
    "#;
    let (_, g) = shb(src);
    assert_eq!(g.entry_edges.len(), 1);
    let e = &g.entry_edges[0];
    assert_eq!(e.parent, OriginId::ROOT);
    assert_ne!(e.child, OriginId::ROOT);
    // Everything in the child happens after the parent's entry position.
    assert!(g.happens_before((e.parent, e.pos.saturating_sub(1)), (e.child, 0)));
}

/// Rule ⓭ (inter-origin): `x.join()` produces a join edge into the
/// parent's position.
#[test]
fn rule_21_join_edge() {
    let src = r#"
        class W impl Runnable { method run() { } }
        class Main {
            static method main() {
                w = new W();
                w.start();
                join w;
            }
        }
    "#;
    let (_, g) = shb(src);
    assert_eq!(g.join_edges.len(), 1);
    let j = &g.join_edges[0];
    assert_eq!(j.parent, OriginId::ROOT);
    // Everything in the child happens before the parent's join position.
    assert!(g.happens_before((j.child, 0), (j.parent, j.pos)));
}

/// Statics produce nodes keyed by (class, field) signatures.
#[test]
fn static_access_nodes() {
    let src = r#"
        class G { }
        class Main {
            static method main() {
                v = new G();
                G::slot = v;
                w = G::slot;
            }
        }
    "#;
    let (p, g) = shb(src);
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let statics: Vec<_> = root
        .accesses
        .iter()
        .filter(|a| matches!(a.key, MemKey::Static(..)))
        .collect();
    assert_eq!(statics.len(), 2);
    let _ = p;
}

/// Static synchronized methods hold the class monitor.
#[test]
fn static_sync_method_holds_class_lock() {
    let src = r#"
        class G { }
        class Lib {
            static sync method poke() { v = G::slot; G::slot = v; }
        }
        class Main {
            static method main() { Lib::poke(); }
        }
    "#;
    let (_, g) = shb(src);
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let w = root
        .accesses
        .iter()
        .find(|a| a.is_write)
        .expect("the static store");
    assert_ne!(w.lockset, LockSetId::EMPTY);
    assert_eq!(root.acquires.len(), 1);
    assert_ne!(root.acquires[0].released_pos, u32::MAX);
}

/// Re-walking a method under a different lockset records both variants
/// (no false negatives from visited-set merging).
#[test]
fn rewalk_under_different_lockset() {
    let src = r#"
        class C { field f; }
        class Lib { static method touch(x) { x.f = x; } }
        class Main {
            static method main() {
                x = new C();
                Lib::touch(x);
                sync (x) { Lib::touch(x); }
            }
        }
    "#;
    let (p, g) = shb(src);
    let f = p.field_by_name("f").unwrap();
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let writes: Vec<_> = root
        .accesses
        .iter()
        .filter(|a| matches!(a.key, MemKey::Field(_, ff) if ff == f))
        .collect();
    assert_eq!(writes.len(), 2, "one unlocked + one locked variant");
    assert!(writes.iter().any(|a| a.lockset == LockSetId::EMPTY));
    assert!(writes.iter().any(|a| a.lockset != LockSetId::EMPTY));
}

/// The dot exports produce well-formed Graphviz text.
#[test]
fn dot_exports() {
    let src = r#"
        class W impl Runnable { method run() { } }
        class Main {
            static method main() {
                w = new W();
                w.start();
                join w;
            }
        }
    "#;
    let p = parse(src).unwrap();
    let pta = analyze(
        &o2_ir::ProgramCtx::solo(&p),
        &PtaConfig::with_policy(Policy::origin1()),
    );
    let g = build_shb(
        &o2_ir::ProgramCtx::solo(&p),
        &pta,
        &ShbConfig::default(),
        &mut LocTable::new(),
    );
    let shb_dot = g.to_dot(&pta);
    assert!(shb_dot.starts_with("digraph shb {"), "{shb_dot}");
    assert!(shb_dot.contains("thread"), "{shb_dot}");
    assert!(shb_dot.contains("join@"), "{shb_dot}");
    assert!(shb_dot.ends_with("}\n"));
    let cg_dot = pta.callgraph_to_dot(&p);
    assert!(cg_dot.starts_with("digraph callgraph {"), "{cg_dot}");
    assert!(cg_dot.contains("W.run"), "{cg_dot}");
    assert!(
        cg_dot.contains("color=red"),
        "entry edges highlighted: {cg_dot}"
    );
}

/// Regression: a method called both before and after a spawn must have its
/// accesses recorded at BOTH positions — memoizing only the first call
/// would falsely order the post-spawn access before the entry edge.
#[test]
fn rewalk_after_inter_origin_edge() {
    let src = r#"
        class S { field data; }
        class Lib { static method touch(s) { x = s.data; } }
        class W impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class Main {
            static method main() {
                s = new S();
                Lib::touch(s);
                w = new W(s);
                w.start();
                Lib::touch(s);
            }
        }
    "#;
    let p = parse(src).unwrap();
    let pta = analyze(
        &o2_ir::ProgramCtx::solo(&p),
        &PtaConfig::with_policy(Policy::origin1()),
    );
    let g = build_shb(
        &o2_ir::ProgramCtx::solo(&p),
        &pta,
        &ShbConfig::default(),
        &mut LocTable::new(),
    );
    let data = p.field_by_name("data").unwrap();
    let root = &g.traces[OriginId::ROOT.0 as usize];
    let reads: Vec<u32> = root
        .accesses
        .iter()
        .filter(|a| matches!(a.key, MemKey::Field(_, f) if f == data) && !a.is_write)
        .map(|a| a.pos)
        .collect();
    assert_eq!(
        reads.len(),
        2,
        "both touch() calls must appear in the trace"
    );
    let entry_pos = g.entry_edges[0].pos;
    assert!(reads[0] < entry_pos, "first read precedes the spawn");
    assert!(reads[1] > entry_pos, "second read follows the spawn");
    // And the race is real: the post-spawn read vs the thread write.
    let child = g.entry_edges[0].child;
    let w = g.traces[child.0 as usize]
        .accesses
        .iter()
        .find(|a| a.is_write)
        .unwrap();
    assert!(!g.happens_before((OriginId::ROOT, reads[1]), (child, w.pos)));
    assert!(!g.happens_before((child, w.pos), (OriginId::ROOT, reads[1])));
}
