//! End-to-end tests of the `o2` command-line binary.

use std::io::Write;
use std::process::Command;

fn o2_bin() -> &'static str {
    env!("CARGO_BIN_EXE_o2", "o2 binary built by cargo")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("o2-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const RACY: &str = r#"
    class S { field data; }
    class W impl Runnable {
        field s;
        method <init>(s) { this.s = s; }
        method run() { s = this.s; s.data = s; }
    }
    class Main {
        static method main() {
            s = new S();
            w = new W(s);
            w.start();
            x = s.data;
        }
    }
"#;

#[test]
fn reports_race_with_exit_code_one() {
    let file = write_temp("racy.o2", RACY);
    let out = Command::new(o2_bin()).arg(&file).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("race #1"), "{stdout}");
    assert!(stdout.contains("data"), "{stdout}");
}

#[test]
fn clean_program_exits_zero() {
    let file = write_temp("clean.o2", "class Main { static method main() { } }");
    let out = Command::new(o2_bin()).arg(&file).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no races detected"), "{stdout}");
}

#[test]
fn parse_error_exits_with_parse_stage_code() {
    let file = write_temp("bad.o2", "class {");
    let out = Command::new(o2_bin()).arg(&file).output().unwrap();
    assert_eq!(out.status.code(), Some(10), "parse stage exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn missing_file_exits_with_io_stage_code() {
    let out = Command::new(o2_bin())
        .arg("/nonexistent/file.o2")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(16), "io stage exit code");
}

#[test]
fn policy_flag_changes_results() {
    // The Figure 3 program: OPA clean, 0-ctx reports a false race.
    let src = r#"
        class T impl Runnable {
            field f;
            method run() { x = this.f; x.v = x; }
        }
        class Obj { field v; }
        class Helper { static method initT(t) { o = new Obj(); t.f = o; } }
        class TA : T { method <init>() { Helper::initT(this); } }
        class TB : T { method <init>() { Helper::initT(this); } }
        class Main {
            static method main() {
                a = new TA();
                b = new TB();
                a.start();
                b.start();
            }
        }
    "#;
    let file = write_temp("fig3.o2", src);
    let opa = Command::new(o2_bin()).arg(&file).output().unwrap();
    assert_eq!(opa.status.code(), Some(0), "OPA: no race");
    let zero = Command::new(o2_bin())
        .arg(&file)
        .args(["--policy", "0ctx"])
        .output()
        .unwrap();
    assert_eq!(zero.status.code(), Some(1), "0-ctx: false positive");
}

#[test]
fn deadlock_and_oversync_flags() {
    let src = r#"
        class L { }
        class T1 impl Runnable {
            field a; field b;
            method <init>(a, b) { this.a = a; this.b = b; }
            method run() { a = this.a; b = this.b; sync (a) { sync (b) { x = a; } } }
        }
        class T2 impl Runnable {
            field a; field b;
            method <init>(a, b) { this.a = a; this.b = b; }
            method run() { a = this.a; b = this.b; sync (b) { sync (a) { x = b; } } }
        }
        class Main {
            static method main() {
                a = new L();
                b = new L();
                t1 = new T1(a, b);
                t2 = new T2(a, b);
                t1.start();
                t2.start();
            }
        }
    "#;
    let file = write_temp("deadlock.o2", src);
    let out = Command::new(o2_bin())
        .arg(&file)
        .args(["--deadlocks", "--oversync", "--quiet"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("deadlock #1"), "{stdout}");
    assert!(stdout.contains("no over-synchronization"), "{stdout}");
}

#[test]
fn unknown_flag_is_usage_error() {
    let out = Command::new(o2_bin()).arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn json_output_is_well_formed() {
    let file = write_temp("racy_json.o2", RACY);
    let out = Command::new(o2_bin())
        .arg(&file)
        .args(["--quiet", "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"races\""), "{stdout}");
    assert!(stdout.contains("\"field\": \"data\""), "{stdout}");
    // Balanced braces as a cheap well-formedness check.
    let opens = stdout.matches('{').count();
    let closes = stdout.matches('}').count();
    assert_eq!(opens, closes, "{stdout}");
}

#[test]
fn threads_zero_is_rejected() {
    let file = write_temp("racy_t0.o2", RACY);
    let out = Command::new(o2_bin())
        .arg(&file)
        .args(["--threads", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
}

#[test]
fn threads_one_is_accepted() {
    let file = write_temp("racy_t1.o2", RACY);
    let out = Command::new(o2_bin())
        .arg(&file)
        .args(["--threads", "1", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

/// `--save-db` then `--load-db`: the warm run replays the cached reports
/// (it prints the replay note) and its stdout is byte-identical to the
/// cold run's.
#[test]
fn save_and_load_db_roundtrip() {
    let file = write_temp("racy_db.o2", RACY);
    let db = std::env::temp_dir().join("o2-cli-tests").join("racy.o2db");
    let _ = std::fs::remove_file(&db);
    let cold = Command::new(o2_bin())
        .arg(&file)
        .args(["--quiet", "--format", "json", "--save-db"])
        .arg(&db)
        .output()
        .unwrap();
    assert_eq!(cold.status.code(), Some(1));
    assert!(db.exists(), "database written");
    let warm = Command::new(o2_bin())
        .arg(&file)
        .args(["--format", "json", "--load-db"])
        .arg(&db)
        .output()
        .unwrap();
    assert_eq!(warm.status.code(), Some(1));
    assert_eq!(cold.stdout, warm.stdout, "warm output byte-identical");
    let stderr = String::from_utf8_lossy(&warm.stderr);
    assert!(stderr.contains("replayed cached reports"), "{stderr}");
}

#[test]
fn load_db_with_corrupt_file_exits_two() {
    let file = write_temp("racy_db2.o2", RACY);
    let db = write_temp("corrupt.o2db", "not a database");
    let out = Command::new(o2_bin())
        .arg(&file)
        .args(["--quiet", "--load-db"])
        .arg(&db)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("database"), "{stderr}");
}

#[test]
fn diff_analyze_reports_changed_functions() {
    let old = write_temp("diff_old.o2", RACY);
    // Same program with W.run also writing a second time.
    let new = write_temp(
        "diff_new.o2",
        &RACY.replace("s.data = s;", "s.data = s; s.data = s;"),
    );
    let out = Command::new(o2_bin())
        .arg("diff-analyze")
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("diff: 1 changed"), "{stdout}");
    assert!(stdout.contains("~ W.run/0"), "{stdout}");
    assert!(stdout.contains("incremental:"), "{stdout}");
    assert!(stdout.contains("race(s) after triage"), "{stdout}");
}

#[test]
fn diff_analyze_needs_two_files() {
    let old = write_temp("diff_only.o2", RACY);
    let out = Command::new(o2_bin())
        .arg("diff-analyze")
        .arg(&old)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exactly two input files"), "{stderr}");
}

#[test]
fn c_frontend_by_extension() {
    let src = r#"
        struct S { any data; };
        void worker(any s) { s->data = s; }
        void main() {
            s = malloc(S);
            pthread_create(&t, worker, s);
            x = s->data;
        }
    "#;
    let file = write_temp("racy.c", src);
    let out = Command::new(o2_bin()).arg(&file).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("race #1"), "{stdout}");
}
