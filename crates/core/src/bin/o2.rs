//! The `o2` command-line tool: analyze a source file for data races,
//! deadlocks, and over-synchronization.
//!
//! ```text
//! o2 <file.o2> [--policy 0ctx|1cfa|2cfa|1obj|2obj|origin|korigin:K]
//!              [--naive] [--no-dispatcher-lock]
//!              [--deadlocks] [--oversync] [--racerd]
//!              [--sharing] [--origins] [--timeout SECS] [--threads N] [--quiet]
//!              [--format text|json|sarif]
//! ```
//!
//! `--format` selects the triaged precision-pipeline output (confidence
//! tiers, pruned and `@suppress(race)`-suppressed races): `text` for the
//! human summary, `json` for the machine-readable report, `sarif` for a
//! SARIF 2.1.0 document covering races, deadlocks, and over-sync. The
//! legacy `--json` flag still prints the raw detector report.

use o2::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

/// Output selector for the triaged pipeline report (`--format`). `None`
/// keeps the legacy raw-detector output paths.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    file: String,
    policy: Policy,
    naive: bool,
    dispatcher_lock: bool,
    deadlocks: bool,
    oversync: bool,
    racerd: bool,
    sharing: bool,
    origins: bool,
    timeout: Option<Duration>,
    threads: Option<usize>,
    quiet: bool,
    json: bool,
    format: Option<Format>,
    c_frontend: bool,
    dot_shb: bool,
    dot_callgraph: bool,
    html: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        policy: Policy::origin1(),
        naive: false,
        dispatcher_lock: true,
        deadlocks: false,
        oversync: false,
        racerd: false,
        sharing: false,
        origins: false,
        timeout: None,
        threads: None,
        quiet: false,
        json: false,
        format: None,
        c_frontend: false,
        dot_shb: false,
        dot_callgraph: false,
        html: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                let v = args.get(i).ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--naive" => opts.naive = true,
            "--no-dispatcher-lock" => opts.dispatcher_lock = false,
            "--deadlocks" => opts.deadlocks = true,
            "--oversync" => opts.oversync = true,
            "--racerd" => opts.racerd = true,
            "--sharing" => opts.sharing = true,
            "--origins" => opts.origins = true,
            "--quiet" => opts.quiet = true,
            "--json" => opts.json = true,
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                opts.format = Some(match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other}")),
                });
            }
            "--c" => opts.c_frontend = true,
            "--html" => {
                i += 1;
                opts.html = Some(args.get(i).ok_or("--html needs a path")?.clone());
            }
            "--dot-shb" => opts.dot_shb = true,
            "--dot-callgraph" => opts.dot_callgraph = true,
            "--timeout" => {
                i += 1;
                let v = args.get(i).ok_or("--timeout needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "invalid --timeout")?;
                opts.timeout = Some(Duration::from_secs(secs));
            }
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a value")?;
                opts.threads = Some(v.parse().map_err(|_| "invalid --threads")?);
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            file => {
                if !opts.file.is_empty() {
                    return Err("multiple input files".to_string());
                }
                opts.file = file.to_string();
            }
        }
        i += 1;
    }
    if opts.file.is_empty() {
        return Err("no input file".to_string());
    }
    Ok(opts)
}

fn parse_policy(v: &str) -> Result<Policy, String> {
    Ok(match v {
        "0ctx" | "insensitive" => Policy::insensitive(),
        "1cfa" => Policy::cfa1(),
        "2cfa" => Policy::cfa2(),
        "1obj" => Policy::obj1(),
        "2obj" => Policy::obj2(),
        "origin" | "o2" => Policy::origin1(),
        other => {
            if let Some(k) = other.strip_prefix("korigin:") {
                let k: usize = k.parse().map_err(|_| "invalid k in korigin:K")?;
                if k == 0 {
                    return Err("korigin:K requires k >= 1".to_string());
                }
                Policy::origin(k)
            } else {
                return Err(format!("unknown policy {other}"));
            }
        }
    })
}

fn usage() {
    eprintln!(
        "usage: o2 <file.o2> [--policy 0ctx|1cfa|2cfa|1obj|2obj|origin|korigin:K]\n\
         \x20         [--naive] [--no-dispatcher-lock] [--deadlocks] [--oversync]\n\
         \x20         [--racerd] [--sharing] [--origins] [--timeout SECS] [--threads N]\n\
         \x20         [--quiet] [--json] [--format text|json|sarif] [--c]\n\
         \x20         [--dot-shb] [--dot-callgraph] [--html FILE]"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    // Frontend selection: `.c` files (or --c) use the pthread-style C
    // frontend; everything else the Java-like syntax.
    let use_c = opts.c_frontend || opts.file.ends_with(".c");
    let parsed = if use_c {
        o2_ir::cfront::parse_c(&src)
    } else {
        o2_ir::parser::parse(&src)
    };
    let program = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let issues = o2_ir::validate::validate(&program);
    if !issues.is_empty() {
        for i in &issues {
            eprintln!("{}: invalid program: {i}", opts.file);
        }
        return ExitCode::from(2);
    }

    let mut builder = O2Builder::new().policy(opts.policy).shb_config(ShbConfig {
        event_dispatcher_lock: opts.dispatcher_lock,
        ..Default::default()
    });
    if opts.naive {
        builder = builder.detect_config(DetectConfig::naive());
    }
    if let Some(t) = opts.threads {
        builder = builder.detect_threads(t);
    }
    if let Some(t) = opts.timeout {
        builder = builder.pta_timeout(t).detect_timeout(t);
    }
    let report = builder.build().analyze(&program);

    if !opts.quiet {
        println!("{}", report.summary());
        println!();
    }
    if opts.origins {
        println!("origins:");
        for (id, data) in report.pta.arena.origins() {
            let m = program.method(data.entry);
            println!(
                "  origin {}: {} entry={}.{} depth={}",
                id.0,
                data.kind,
                program.class(m.class).name,
                m.name,
                data.depth
            );
        }
        println!();
    }
    if opts.sharing {
        let text = report.osa.render(&program, &report.pta);
        if text.is_empty() {
            println!("no origin-shared locations with a writer\n");
        } else {
            println!("{text}");
        }
    }
    if let Some(path) = &opts.html {
        let html = o2_detect::render_html(&program, &report.pta, &report.races);
        if let Err(e) = std::fs::write(path, html) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!("wrote HTML report to {path}");
        }
    }
    if opts.dot_callgraph {
        print!("{}", report.pta.callgraph_to_dot(&program));
    }
    if opts.dot_shb {
        print!("{}", report.shb.to_dot(&report.pta));
    }
    if let Some(format) = opts.format {
        // Pipeline mode: triage the detector output (suppression,
        // ownership pruning, guarded-by inference, racerd agreement) and
        // print the requested rendering. The exit code reflects the
        // *triaged* race list, so `@suppress(race)` and pruning make a
        // clean run exit 0.
        let pipeline = report.run_pipeline(&program);
        match format {
            Format::Text => print!("{}", pipeline.render(&program)),
            Format::Json => print!("{}", pipeline.to_json(&program)),
            Format::Sarif => print!("{}", pipeline.to_sarif(&program)),
        }
        return if pipeline.races.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if opts.json {
        print!("{}", report.races.to_json(&program));
    } else {
        print!("{}", report.races.render(&program));
    }
    if opts.deadlocks {
        println!();
        print!("{}", report.detect_deadlocks(&program).render(&program, &report.shb));
    }
    if opts.oversync {
        println!();
        print!("{}", report.find_oversync(&program).render(&program));
    }
    if opts.racerd {
        println!();
        let rd = o2_racerd::run_racerd(&program);
        println!(
            "RacerD-style comparison: {} warnings ({} read/write, {} unprotected writes)",
            rd.total_warnings(),
            rd.num_read_write_races,
            rd.num_unprotected_writes
        );
    }
    if report.num_races() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
