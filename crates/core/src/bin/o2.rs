//! The `o2` command-line tool: analyze a source file for data races,
//! deadlocks, and over-synchronization.
//!
//! ```text
//! o2 <file.o2> [--policy 0ctx|1cfa|2cfa|1obj|2obj|origin|korigin:K]
//!              [--naive] [--no-dispatcher-lock]
//!              [--deadlocks] [--oversync] [--racerd]
//!              [--sharing] [--origins] [--timeout SECS] [--threads N] [--quiet]
//!              [--format text|json|sarif] [--save-db FILE] [--load-db FILE]
//! o2 diff-analyze <old.o2> <new.o2> [same flags]
//! ```
//!
//! `--format` selects the triaged precision-pipeline output (confidence
//! tiers, pruned and `@suppress(race)`-suppressed races): `text` for the
//! human summary, `json` for the machine-readable report, `sarif` for a
//! SARIF 2.1.0 document covering races, deadlocks, and over-sync. The
//! legacy `--json` flag still prints the raw detector report.
//!
//! `--save-db`/`--load-db` persist the incremental analysis database
//! between runs: a warm run replays stored per-origin artifacts for
//! everything the edit did not touch and produces output byte-identical
//! to a cold run. `diff-analyze` runs both versions in one process and
//! reports what was re-analyzed.

//! # Exit codes
//!
//! `0` — clean run, no races; `1` — races found; `2` — usage or
//! option errors. Typed pipeline failures map their [`O2Error`] stage
//! to a distinct code: parse 10, resolve 11, pta 12, analysis 13,
//! detect 14, db 15, io 16, timeout 17, budget 18, internal (caught
//! panic) 19.

use o2::prelude::*;
use o2_db::{AnalysisDb, CachedReports};
use std::panic::AssertUnwindSafe;
use std::process::ExitCode;
use std::time::Duration;

/// Runs `f` under a panic backstop: a panic anywhere in the pipeline
/// becomes a typed `internal` error (exit 19) instead of an abort.
fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, O2Error> {
    std::panic::catch_unwind(AssertUnwindSafe(f)).map_err(O2Error::from_panic)
}

/// Prints a typed error and maps its stage to the process exit code.
fn fail(err: &O2Error) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::from(err.exit_code())
}

/// Output selector for the triaged pipeline report (`--format`). `None`
/// keeps the legacy raw-detector output paths.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    file: String,
    /// Second input of `diff-analyze` mode.
    file2: String,
    diff: bool,
    /// `batch` mode: `file` is a manifest, not a program.
    batch: bool,
    /// Worker threads of `batch` mode (default: available parallelism).
    workers: Option<usize>,
    policy: Policy,
    naive: bool,
    dispatcher_lock: bool,
    deadlocks: bool,
    oversync: bool,
    racerd: bool,
    sharing: bool,
    origins: bool,
    timeout: Option<Duration>,
    threads: Option<usize>,
    quiet: bool,
    json: bool,
    format: Option<Format>,
    c_frontend: bool,
    dot_shb: bool,
    dot_callgraph: bool,
    html: Option<String>,
    save_db: Option<String>,
    load_db: Option<String>,
    /// `serve` mode: `file` is a listen address, not a program.
    serve: bool,
    /// `loadgen` mode: `file` is a daemon address, not a program.
    loadgen: bool,
    /// `serve --port-file`: write the bound address here once listening.
    port_file: Option<String>,
    lg: o2::LoadgenConfig,
    smoke: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        file: String::new(),
        file2: String::new(),
        diff: false,
        batch: false,
        workers: None,
        policy: Policy::origin1(),
        naive: false,
        dispatcher_lock: true,
        deadlocks: false,
        oversync: false,
        racerd: false,
        sharing: false,
        origins: false,
        timeout: None,
        threads: None,
        quiet: false,
        json: false,
        format: None,
        c_frontend: false,
        dot_shb: false,
        dot_callgraph: false,
        html: None,
        save_db: None,
        load_db: None,
        serve: false,
        loadgen: false,
        port_file: None,
        lg: o2::LoadgenConfig::default(),
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                i += 1;
                let v = args.get(i).ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--naive" => opts.naive = true,
            "--no-dispatcher-lock" => opts.dispatcher_lock = false,
            "--deadlocks" => opts.deadlocks = true,
            "--oversync" => opts.oversync = true,
            "--racerd" => opts.racerd = true,
            "--sharing" => opts.sharing = true,
            "--origins" => opts.origins = true,
            "--quiet" => opts.quiet = true,
            "--json" => opts.json = true,
            "--format" => {
                i += 1;
                let v = args.get(i).ok_or("--format needs a value")?;
                opts.format = Some(match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format {other}")),
                });
            }
            "--c" => opts.c_frontend = true,
            "--html" => {
                i += 1;
                opts.html = Some(args.get(i).ok_or("--html needs a path")?.clone());
            }
            "--save-db" => {
                i += 1;
                opts.save_db = Some(args.get(i).ok_or("--save-db needs a path")?.clone());
            }
            "--load-db" => {
                i += 1;
                opts.load_db = Some(args.get(i).ok_or("--load-db needs a path")?.clone());
            }
            "--dot-shb" => opts.dot_shb = true,
            "--dot-callgraph" => opts.dot_callgraph = true,
            "--port-file" => {
                i += 1;
                opts.port_file = Some(args.get(i).ok_or("--port-file needs a path")?.clone());
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a value")?;
                opts.lg.seed = v.parse().map_err(|_| "invalid --seed")?;
            }
            "--clients" => {
                i += 1;
                let v = args.get(i).ok_or("--clients needs a value")?;
                let n: usize = v.parse().map_err(|_| "invalid --clients")?;
                if n == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
                opts.lg.clients = n;
            }
            "--requests" => {
                i += 1;
                let v = args.get(i).ok_or("--requests needs a value")?;
                opts.lg.requests = v.parse().map_err(|_| "invalid --requests")?;
            }
            "--rate" => {
                i += 1;
                let v = args.get(i).ok_or("--rate needs a value")?;
                let r: f64 = v.parse().map_err(|_| "invalid --rate")?;
                if !r.is_finite() || r < 0.0 {
                    return Err("--rate must be a finite non-negative number".to_string());
                }
                opts.lg.rate = r;
            }
            "--workloads" => {
                i += 1;
                let v = args.get(i).ok_or("--workloads needs a comma list")?;
                opts.lg.workloads = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--zipf" => {
                i += 1;
                let v = args.get(i).ok_or("--zipf needs a value")?;
                opts.lg.zipf_s = v.parse().map_err(|_| "invalid --zipf")?;
            }
            "--edit-prob" => {
                i += 1;
                let v = args.get(i).ok_or("--edit-prob needs a value")?;
                let p: f64 = v.parse().map_err(|_| "invalid --edit-prob")?;
                if !(0.0..=1.0).contains(&p) {
                    return Err("--edit-prob must be in 0..=1".to_string());
                }
                opts.lg.edit_prob = p;
            }
            "--max-edit" => {
                i += 1;
                let v = args.get(i).ok_or("--max-edit needs a value")?;
                opts.lg.max_edit = v.parse().map_err(|_| "invalid --max-edit")?;
            }
            "--malformed-frac" => {
                i += 1;
                let v = args.get(i).ok_or("--malformed-frac needs a value")?;
                let p: f64 = v.parse().map_err(|_| "invalid --malformed-frac")?;
                if !(0.0..=1.0).contains(&p) {
                    return Err("--malformed-frac must be in 0..=1".to_string());
                }
                opts.lg.malformed_frac = p;
            }
            "--verify" => opts.lg.verify = true,
            "--shutdown" => opts.lg.shutdown = true,
            "--smoke" => opts.smoke = true,
            "--timeout" => {
                i += 1;
                let v = args.get(i).ok_or("--timeout needs a value")?;
                let secs: u64 = v.parse().map_err(|_| "invalid --timeout")?;
                opts.timeout = Some(Duration::from_secs(secs));
            }
            "--workers" => {
                i += 1;
                let v = args.get(i).ok_or("--workers needs a value")?;
                let n: usize = v.parse().map_err(|_| "invalid --workers")?;
                if n == 0 {
                    return Err(
                        "--workers must be at least 1 (omit the flag to use all cores)".to_string(),
                    );
                }
                opts.workers = Some(n);
            }
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| "invalid --threads")?;
                if n == 0 {
                    return Err(
                        "--threads must be at least 1 (omit the flag to use all cores)".to_string(),
                    );
                }
                opts.threads = Some(n);
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}"));
            }
            file => files.push(file.to_string()),
        }
        i += 1;
    }
    if files.first().map(String::as_str) == Some("diff-analyze") {
        if files.len() != 3 {
            return Err("diff-analyze needs exactly two input files".to_string());
        }
        opts.diff = true;
        opts.file = files[1].clone();
        opts.file2 = files[2].clone();
    } else if files.first().map(String::as_str) == Some("batch") {
        if files.len() != 2 {
            return Err("batch needs exactly one manifest file".to_string());
        }
        opts.batch = true;
        opts.file = files[1].clone();
    } else if files.first().map(String::as_str) == Some("serve") {
        if files.len() != 2 {
            return Err("serve needs exactly one listen address (e.g. 127.0.0.1:7411)".to_string());
        }
        opts.serve = true;
        opts.file = files[1].clone();
    } else if files.first().map(String::as_str) == Some("loadgen") {
        if files.len() != 2 {
            return Err("loadgen needs exactly one daemon address".to_string());
        }
        opts.loadgen = true;
        opts.file = files[1].clone();
    } else {
        match files.len() {
            0 => return Err("no input file".to_string()),
            1 => opts.file = files[0].clone(),
            _ => return Err("multiple input files".to_string()),
        }
    }
    Ok(opts)
}

fn parse_policy(v: &str) -> Result<Policy, String> {
    Ok(match v {
        "0ctx" | "insensitive" => Policy::insensitive(),
        "1cfa" => Policy::cfa1(),
        "2cfa" => Policy::cfa2(),
        "1obj" => Policy::obj1(),
        "2obj" => Policy::obj2(),
        "origin" | "o2" => Policy::origin1(),
        other => {
            if let Some(k) = other.strip_prefix("korigin:") {
                let k: usize = k.parse().map_err(|_| "invalid k in korigin:K")?;
                if k == 0 {
                    return Err("korigin:K requires k >= 1".to_string());
                }
                Policy::origin(k)
            } else {
                return Err(format!("unknown policy {other}"));
            }
        }
    })
}

fn usage() {
    eprintln!(
        "usage: o2 <file.o2> [--policy 0ctx|1cfa|2cfa|1obj|2obj|origin|korigin:K]\n\
         \x20         [--naive] [--no-dispatcher-lock] [--deadlocks] [--oversync]\n\
         \x20         [--racerd] [--sharing] [--origins] [--timeout SECS] [--threads N]\n\
         \x20         [--quiet] [--json] [--format text|json|sarif] [--c]\n\
         \x20         [--dot-shb] [--dot-callgraph] [--html FILE]\n\
         \x20         [--save-db FILE] [--load-db FILE]\n\
         \x20      o2 diff-analyze <old.o2> <new.o2> [same flags]\n\
         \x20      o2 batch <manifest> [--workers N] [--format json|sarif] [--save-db FILE]\n\
         \x20         [same flags]\n\
         \x20         manifest: one entry per line — a registry workload name\n\
         \x20         (avrora, mega-smoke, realbug:ZooKeeper, realbug-c:Memcached)\n\
         \x20         or `name = path/to/file.o2`; `#` starts a comment\n\
         \x20      o2 serve <addr> [--workers N] [--load-db FILE] [--save-db FILE]\n\
         \x20         [--port-file FILE] [--quiet] [same engine flags]\n\
         \x20         resident daemon; line-delimited JSON protocol (DESIGN §14)\n\
         \x20      o2 loadgen <addr> [--seed N] [--clients N] [--requests N] [--rate R]\n\
         \x20         [--workloads a,b,c] [--zipf S] [--edit-prob P] [--max-edit N]\n\
         \x20         [--malformed-frac P] [--verify] [--smoke] [--shutdown] [--json]\n\
         \x20         deterministic open-system load driver (latency p50/p90/p99);\n\
         \x20         --malformed-frac injects broken requests the daemon must\n\
         \x20         answer with structured errors"
    );
}

/// `o2 serve <addr>`: bind, optionally pre-seed the artifact pool from
/// `--load-db`, and run the accept loop until a `shutdown` request.
/// With `--save-db` the pool is snapshotted to disk on the way out.
fn run_serve_mode(engine: &O2, opts: &Options) -> ExitCode {
    use std::sync::Arc;
    let state = Arc::new(o2::serve::ServeState::new(engine.clone()));
    if let Some(path) = &opts.load_db {
        let p = std::path::Path::new(path);
        if p.exists() {
            match AnalysisDb::load(p) {
                Ok(image) => match state.preseed(&image) {
                    Ok(n) => {
                        if !opts.quiet {
                            eprintln!("o2 serve: pre-seeded {n} artifacts from {path}");
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let listener = match std::net::TcpListener::bind(&opts.file) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.port_file {
        if let Err(e) = std::fs::write(path, format!("{local}\n")) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        eprintln!("o2 serve: listening on {local}");
    }
    let serve_opts = o2::ServeOptions {
        workers: opts.workers.unwrap_or(0),
        ..Default::default()
    };
    if let Err(e) = o2::serve::run(listener, &state, &serve_opts) {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if let Some(path) = &opts.save_db {
        if let Err(e) = state.snapshot_db().save(std::path::Path::new(path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !opts.quiet {
            eprintln!("o2 serve: saved artifact pool to {path}");
        }
    }
    if !opts.quiet {
        let s = state.stats();
        eprintln!(
            "o2 serve: {} requests ({} analyze, {} diff, {} errors), \
             {} report hits, {:.1}% replay rate",
            s.requests,
            s.analyze_ok,
            s.diff_ok,
            s.errors,
            s.report_hits,
            s.replay_rate() * 100.0
        );
    }
    ExitCode::SUCCESS
}

/// `o2 loadgen <addr>`: drive a running daemon. `--smoke` runs the CI
/// sequence (cold + warm + byte-compare against the solo oracle)
/// instead of the full schedule.
fn run_loadgen_mode(engine: &O2, opts: &Options) -> ExitCode {
    if opts.smoke {
        return match o2::loadgen::run_smoke(&opts.file, engine, opts.lg.shutdown) {
            Ok(line) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    match o2::run_loadgen(&opts.file, engine, &opts.lg) {
        Ok(report) => {
            if opts.json {
                println!(
                    "{{\"requests\":{},\"errors\":{},\"mismatches\":{},\"warm\":{},\
                     \"malformed\":{},\"malformed_ok\":{},\
                     \"wall_ms\":{:.3},\"analyses_per_sec\":{:.3},\
                     \"cold_p50_ms\":{:.3},\"cold_p90_ms\":{:.3},\"cold_p99_ms\":{:.3},\
                     \"warm_p50_ms\":{:.3},\"warm_p90_ms\":{:.3},\"warm_p99_ms\":{:.3},\
                     \"err_p50_ms\":{:.3},\"err_p99_ms\":{:.3}}}",
                    report.requests,
                    report.errors,
                    report.mismatches,
                    report.warm_responses,
                    report.malformed,
                    report.malformed_ok,
                    report.wall_ms,
                    report.analyses_per_sec,
                    report.cold.p50,
                    report.cold.p90,
                    report.cold.p99,
                    report.warm.p50,
                    report.warm.p90,
                    report.warm.p99,
                    report.err.p50,
                    report.err.p99,
                );
            } else {
                print!("{}", report.render());
            }
            if report.errors == 0 && report.mismatches == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `o2 batch manifest`: analyze the whole corpus over a shared artifact
/// pool. The merged report (JSON or SARIF, byte-identical for every
/// `--workers` value and manifest order) goes to stdout; the
/// scheduling-dependent summary table goes to stderr.
fn run_batch_mode(engine: &O2, opts: &Options) -> ExitCode {
    let path = std::path::Path::new(&opts.file);
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.file);
            return ExitCode::from(2);
        }
    };
    let base = path.parent().unwrap_or(std::path::Path::new("."));
    let entries = match o2::parse_manifest(&text, base) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let workers = opts.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let store = o2_db::SharedStore::new(engine.config_sig());
    let report = o2::run_batch_with_store(engine, &entries, workers, &store);
    if let Some(path) = &opts.save_db {
        if let Err(e) = store.snapshot().save(std::path::Path::new(path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !opts.quiet {
            eprintln!("o2 batch: saved artifact pool to {path}");
        }
    }
    match opts.format {
        Some(Format::Sarif) => print!("{}", report.sarif),
        Some(Format::Text) | None => {}
        _ => print!("{}", report.json),
    }
    if !opts.quiet {
        eprint!("{}", report.summary());
    }
    // Races dominate the exit code; otherwise the first failing entry
    // (in name order) maps its stage, and a fully clean corpus exits 0.
    if report.total_races() > 0 {
        ExitCode::from(1)
    } else if let Some(err) = report.first_error() {
        ExitCode::from(err.exit_code())
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads, parses (selecting the frontend by `--c` or the extension), and
/// validates one input program. Failures carry their stage: an
/// unreadable file is an `io` error, a syntax error is a `parse` error
/// with source position, an invalid program is a `resolve` error.
fn load_program(path: &str, force_c: bool) -> Result<Program, O2Error> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| O2Error::Io(format!("cannot read {path}: {e}")))?;
    let use_c = force_c || path.ends_with(".c");
    let program = if use_c {
        o2_ir::cfront::parse_c(&src).map_err(O2Error::from)?
    } else {
        o2_ir::parser::parse(&src).map_err(O2Error::from)?
    };
    let issues = o2_ir::validate::validate(&program);
    if let Some(issue) = issues.first() {
        return Err(O2Error::Resolve(format!(
            "{path}: invalid program: {issue}"
        )));
    }
    Ok(program)
}

/// `o2 diff-analyze old new`: analyze `old` cold, then `new` warm from
/// `old`'s in-memory database, print the function-level digest diff and
/// the replay counters, then the triaged report of `new`.
fn run_diff(engine: &O2, opts: &Options, old: &Program, new: &Program) -> ExitCode {
    let d = match run_guarded(|| engine.diff_analyze(old, new)) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if !opts.quiet {
        println!(
            "diff: {} changed, {} added, {} removed, {} invalidated",
            d.diff.changed.len(),
            d.diff.added.len(),
            d.diff.removed.len(),
            d.diff.invalidated.len()
        );
        for name in &d.diff.changed {
            println!("  ~ {name}");
        }
        for name in &d.diff.added {
            println!("  + {name}");
        }
        for name in &d.diff.removed {
            println!("  - {name}");
        }
        println!("{}", d.stats.summary());
        println!();
    }
    if let Some(path) = &opts.save_db {
        if let Err(e) = d.db.save(std::path::Path::new(path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let pipeline = d.new.run_pipeline(new);
    match opts.format {
        Some(Format::Json) => print!("{}", pipeline.to_json(new)),
        Some(Format::Sarif) => print!("{}", pipeline.to_sarif(new)),
        _ => print!("{}", pipeline.render(new)),
    }
    if pipeline.races.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    let mut builder = O2Builder::new().policy(opts.policy).shb_config(ShbConfig {
        event_dispatcher_lock: opts.dispatcher_lock,
        ..Default::default()
    });
    if opts.naive {
        builder = builder.detect_config(DetectConfig::naive());
    }
    if let Some(t) = opts.threads {
        builder = builder.detect_threads(t);
    }
    if let Some(t) = opts.timeout {
        builder = builder.pta_timeout(t).detect_timeout(t);
    }
    let engine = builder.build();

    if opts.batch {
        // The positional argument is a manifest, not a program.
        return run_batch_mode(&engine, &opts);
    }
    if opts.serve {
        // The positional argument is a listen address.
        return run_serve_mode(&engine, &opts);
    }
    if opts.loadgen {
        // The positional argument is a running daemon's address.
        return run_loadgen_mode(&engine, &opts);
    }

    let program = match load_program(&opts.file, opts.c_frontend) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.file);
            return ExitCode::from(e.exit_code());
        }
    };

    if opts.diff {
        let new = match load_program(&opts.file2, opts.c_frontend) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {}: {e}", opts.file2);
                return ExitCode::from(e.exit_code());
            }
        };
        return run_diff(&engine, &opts, &program, &new);
    }

    // Incremental database: load (or start fresh at a not-yet-existing
    // path, so `--load-db X --save-db X` works from the first run on).
    let use_db = opts.load_db.is_some() || opts.save_db.is_some();
    let mut db = match &opts.load_db {
        Some(path) if std::path::Path::new(path).exists() => {
            match AnalysisDb::load(std::path::Path::new(path)) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        _ => AnalysisDb::new(engine.config_sig()),
    };

    // Fast path: digest-identical program and configuration with cached
    // rendered reports — print the cached rendering without re-running
    // anything. Only when no side output needs the full analysis result.
    let wants_full_report = opts.origins
        || opts.sharing
        || opts.deadlocks
        || opts.oversync
        || opts.racerd
        || opts.json
        || opts.dot_shb
        || opts.dot_callgraph
        || opts.html.is_some();
    // Digest once: the cached-report check and the warm analysis both
    // need the program digests, and recomputing them is a measurable
    // slice of a warm run on large programs.
    let digests = if use_db {
        Some(o2_ir::digest_program(&program))
    } else {
        None
    };
    if use_db && !wants_full_report {
        if let Some(format) = opts.format {
            if db.config_sig == engine.config_sig()
                && Some(db.program_sig) == digests.as_ref().map(|d| d.program)
            {
                if let Some(reports) = db.reports.clone() {
                    if !opts.quiet {
                        eprintln!("o2: replayed cached reports from database");
                    }
                    match format {
                        Format::Text => print!("{}", reports.text),
                        Format::Json => print!("{}", reports.json),
                        Format::Sarif => print!("{}", reports.sarif),
                    }
                    if let Some(path) = &opts.save_db {
                        if let Err(e) = db.save(std::path::Path::new(path)) {
                            eprintln!("error: cannot write {path}: {e}");
                            return ExitCode::from(2);
                        }
                    }
                    return if reports.n_races == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    };
                }
            }
        }
    }

    let run = run_guarded(|| {
        if let Some(digests) = &digests {
            let (r, s) = engine.analyze_with_db_prepared(&program, &mut db, digests);
            (r, Some(s))
        } else {
            (engine.analyze(&program), None)
        }
    });
    let (report, incr_stats) = match run {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };

    if !opts.quiet {
        println!("{}", report.summary());
        if let Some(s) = incr_stats {
            println!("{}", s.summary());
        }
        println!();
    }
    if opts.origins {
        println!("origins:");
        for (id, data) in report.pta.arena.origins() {
            let m = program.method(data.entry);
            println!(
                "  origin {}: {} entry={}.{} depth={}",
                id.0,
                data.kind,
                program.class(m.class).name,
                m.name,
                data.depth
            );
        }
        println!();
    }
    if opts.sharing {
        let text = report.osa.render(&program, &report.pta);
        if text.is_empty() {
            println!("no origin-shared locations with a writer\n");
        } else {
            println!("{text}");
        }
    }
    if let Some(path) = &opts.html {
        let html = o2_detect::render_html(&program, &report.pta, &report.races);
        if let Err(e) = std::fs::write(path, html) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if !opts.quiet {
            println!("wrote HTML report to {path}");
        }
    }
    if opts.dot_callgraph {
        print!("{}", report.pta.callgraph_to_dot(&program));
    }
    if opts.dot_shb {
        print!("{}", report.shb.to_dot(&report.pta));
    }

    let code = if let Some(format) = opts.format {
        // Pipeline mode: triage the detector output (suppression,
        // ownership pruning, guarded-by inference, racerd agreement) and
        // print the requested rendering. The exit code reflects the
        // *triaged* race list, so `@suppress(race)` and pruning make a
        // clean run exit 0.
        let pipeline = report.run_pipeline(&program);
        if use_db {
            db.reports = Some(CachedReports {
                n_races: pipeline.races.len() as u64,
                text: pipeline.render(&program),
                json: pipeline.to_json(&program),
                sarif: pipeline.to_sarif(&program),
            });
        }
        match format {
            Format::Text => print!("{}", pipeline.render(&program)),
            Format::Json => print!("{}", pipeline.to_json(&program)),
            Format::Sarif => print!("{}", pipeline.to_sarif(&program)),
        }
        if pipeline.races.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        }
    } else {
        if opts.json {
            print!("{}", report.races.to_json(&program));
        } else {
            print!("{}", report.races.render(&program));
        }
        if opts.deadlocks {
            println!();
            print!(
                "{}",
                report
                    .detect_deadlocks(&program)
                    .render(&program, &report.shb)
            );
        }
        if opts.oversync {
            println!();
            print!("{}", report.find_oversync(&program).render(&program));
        }
        if opts.racerd {
            println!();
            let rd = o2_racerd::run_racerd(&program);
            println!(
                "RacerD-style comparison: {} warnings ({} read/write, {} unprotected writes)",
                rd.total_warnings(),
                rd.num_read_write_races,
                rd.num_unprotected_writes
            );
        }
        if report.num_races() > 0 {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    };

    if let Some(path) = &opts.save_db {
        if let Err(e) = db.save(std::path::Path::new(path)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    code
}
