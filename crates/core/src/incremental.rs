//! Incremental orchestration: the whole pipeline against an
//! [`AnalysisDb`].
//!
//! [`O2::analyze_with_db`] runs the same stages as [`O2::analyze`], but
//! threads the analysis database through them: OSA replays stored
//! per-method-instance artifacts, SHB replays stored per-origin
//! subgraphs, and detection replays cached per-candidate verdicts —
//! wherever the corresponding content signature is unchanged. The
//! pointer analysis itself is always re-solved (it is the cheap stage
//! and its dense ids anchor every replay), so a warm run produces a
//! report *byte-identical* to a cold run on the same program.
//!
//! Invalidation rule: an artifact is reused iff its stored content
//! signature equals the signature recomputed from this run's program
//! and solver state. There is no dependency tracking to get wrong —
//! a stale artifact simply fails its signature match and the stage
//! recomputes it.

use crate::{AnalysisReport, Timings, O2};
use o2_analysis::{run_osa_bounded, run_osa_incremental};
use o2_db::{AnalysisDb, Digest, DigestHasher};
use o2_detect::{detect_budgeted, detect_incremental_budgeted, DetectConfig};
use o2_ir::{digest_diff, digest_program, Budget, DigestDiff, O2Error, Program, ProgramCtx};
use o2_pta::{CanonIndex, Policy};
use o2_shb::{build_shb, build_shb_incremental, ShbConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Rewrites `dst` to equal `src`, reusing the existing `String` keys of
/// unchanged entries. A warm run commits the full per-method digest maps
/// every time; cloning them key-by-key re-allocates every method name.
fn update_digest_map(dst: &mut BTreeMap<String, Digest>, src: &BTreeMap<String, Digest>) {
    dst.retain(|k, _| src.contains_key(k));
    for (k, &v) in src {
        if let Some(d) = dst.get_mut(k) {
            *d = v;
        } else {
            dst.insert(k.clone(), v);
        }
    }
}

/// Replay/recompute counters of one [`O2::analyze_with_db`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrStats {
    /// `false` when the run bypassed the database (pointer analysis hit
    /// its budget, so dense ids were unstable and nothing was replayed
    /// or stored).
    pub incremental: bool,
    /// OSA method instances replayed from stored artifacts.
    pub mis_replayed: usize,
    /// OSA method instances rescanned.
    pub mis_rescanned: usize,
    /// SHB origins replayed from stored subgraphs.
    pub origins_replayed: usize,
    /// SHB origins re-walked.
    pub origins_walked: usize,
    /// Race candidates whose verdict was replayed.
    pub candidates_replayed: usize,
    /// Race candidates actually re-checked.
    pub candidates_rechecked: usize,
    /// Access pairs accounted from cached verdicts.
    pub pairs_replayed: u64,
    /// Access pairs examined by this run's checks.
    pub pairs_rechecked: u64,
    /// Artifacts replayed from another program's run of the shared batch
    /// store (set by `o2 batch` orchestration; always 0 in solo runs).
    pub cross_program_hits: usize,
}

impl IncrStats {
    /// One-line textual rendering (used by `--load-db` diagnostics and
    /// `diff-analyze`).
    pub fn summary(&self) -> String {
        if !self.incremental {
            return "incremental: bypassed (pointer analysis timed out)".to_string();
        }
        format!(
            "incremental: mis {}r/{}s, origins {}r/{}w, candidates {}r/{}c, pairs {}r/{}c",
            self.mis_replayed,
            self.mis_rescanned,
            self.origins_replayed,
            self.origins_walked,
            self.candidates_replayed,
            self.candidates_rechecked,
            self.pairs_replayed,
            self.pairs_rechecked,
        )
    }

    /// Total artifacts replayed across all three stages. In a batch run,
    /// where each program is analyzed exactly once against the shared
    /// store, every replay is necessarily a cross-program hit.
    pub fn total_replays(&self) -> usize {
        self.mis_replayed + self.origins_replayed + self.candidates_replayed
    }
}

fn write_policy(h: &mut DigestHasher, p: Policy) {
    match p {
        Policy::Insensitive => {
            h.write_u8(0);
            h.write_u64(0);
            h.write_u64(0);
        }
        Policy::CallSite { k, hk } => {
            h.write_u8(1);
            h.write_u64(k as u64);
            h.write_u64(hk as u64);
        }
        Policy::Object { k, hk } => {
            h.write_u8(2);
            h.write_u64(k as u64);
            h.write_u64(hk as u64);
        }
        Policy::Origin { k } => {
            h.write_u8(3);
            h.write_u64(k as u64);
            h.write_u64(0);
        }
    }
}

fn write_timeout(h: &mut DigestHasher, t: Option<Duration>) {
    match t {
        Some(d) => {
            h.write_bool(true);
            h.write_u64(d.as_nanos() as u64);
        }
        None => {
            h.write_bool(false);
            h.write_u64(0);
        }
    }
}

impl O2 {
    /// Digest of every configuration field that can influence analysis
    /// *results*. A database recorded under a different signature is
    /// cleared before use. `detect.threads` is deliberately excluded:
    /// the report is byte-identical for every worker count, so warm
    /// databases are shareable across `--threads` settings.
    pub fn config_sig(&self) -> Digest {
        let mut h = DigestHasher::with_tag("o2.config.v1");
        write_policy(&mut h, self.pta.policy);
        write_timeout(&mut h, self.pta.timeout);
        h.write_u64(self.pta.max_steps);
        h.write_u64(self.pta.wrapper_site_limit as u64);
        h.write_u32(self.pta.max_origin_depth);
        h.write_bool(self.pta.anonymous_external_objects);
        h.write_bool(self.pta.difference_propagation);
        h.write_u64(self.shb.node_budget as u64);
        h.write_u64(self.shb.max_walk_depth as u64);
        h.write_u64(self.shb.max_visited_methods as u64);
        h.write_bool(self.shb.event_dispatcher_lock);
        match self.shb.main_dispatcher {
            Some(d) => {
                h.write_bool(true);
                h.write_u32(u32::from(d));
            }
            None => {
                h.write_bool(false);
                h.write_u32(0);
            }
        }
        write_timeout(&mut h, self.shb.timeout);
        h.write_bool(self.detect.integer_hb);
        h.write_bool(self.detect.canonical_locksets);
        h.write_bool(self.detect.lock_region_merging);
        h.write_bool(self.detect.hb_cache);
        h.write_u64(self.detect.max_pairs_per_location as u64);
        write_timeout(&mut h, self.detect.timeout);
        h.finish()
    }

    /// Runs the full pipeline against `db`, replaying stored artifacts
    /// for every unchanged origin / method instance / candidate and
    /// rewriting the database to exactly this run's artifacts.
    ///
    /// The report is equal to what [`O2::analyze`] computes on the same
    /// program (asserted byte-identical over rendered outputs by the
    /// equivalence tests). If the pointer analysis hits its budget the
    /// run bypasses the database entirely — a truncated solve has
    /// unstable dense ids, so nothing is replayed and the stored
    /// artifacts are left untouched for the next full run.
    pub fn analyze_with_db(
        &self,
        program: &Program,
        db: &mut AnalysisDb,
    ) -> (AnalysisReport, IncrStats) {
        self.analyze_with_db_ctx(&ProgramCtx::solo(program), db)
    }

    /// [`O2::analyze_with_db`] under an explicit [`ProgramCtx`] — the
    /// entry point batch workers use, each with its own context and
    /// checked-out database.
    pub fn analyze_with_db_ctx(
        &self,
        ctx: &ProgramCtx<'_>,
        db: &mut AnalysisDb,
    ) -> (AnalysisReport, IncrStats) {
        let digests = digest_program(ctx.program());
        self.analyze_with_db_prepared_ctx(ctx, db, &digests)
    }

    /// [`O2::analyze_with_db`] with the program digests supplied by the
    /// caller. Digesting a large program is a measurable slice of a warm
    /// run, and callers such as `--load-db` verification have already
    /// computed the digests to validate the image — this entry point lets
    /// them be reused instead of recomputed.
    pub fn analyze_with_db_prepared(
        &self,
        program: &Program,
        db: &mut AnalysisDb,
        digests: &o2_ir::ProgramDigests,
    ) -> (AnalysisReport, IncrStats) {
        self.analyze_with_db_prepared_ctx(&ProgramCtx::solo(program), db, digests)
    }

    /// [`O2::analyze_with_db_prepared`] under an explicit [`ProgramCtx`].
    pub fn analyze_with_db_prepared_ctx(
        &self,
        ctx: &ProgramCtx<'_>,
        db: &mut AnalysisDb,
        digests: &o2_ir::ProgramDigests,
    ) -> (AnalysisReport, IncrStats) {
        self.try_analyze_with_db_prepared_ctx(ctx, db, digests, &Budget::unlimited())
            .expect("unlimited budget cannot trip")
    }

    /// [`O2::analyze_with_db_prepared_ctx`] under a [`Budget`]. The
    /// budget is checked at every stage boundary and polled inside the
    /// solver and detection loops; when it trips, the run aborts with a
    /// typed [`O2Error`]. Artifacts committed by stages that finished
    /// before the trip are valid and signature-matched, so they replay
    /// on the next run; the final program-identity commit is skipped,
    /// which keeps cached rendered reports describing a completed run.
    pub fn try_analyze_with_db_prepared_ctx(
        &self,
        ctx: &ProgramCtx<'_>,
        db: &mut AnalysisDb,
        digests: &o2_ir::ProgramDigests,
        budget: &Budget,
    ) -> Result<(AnalysisReport, IncrStats), O2Error> {
        let t0 = Instant::now();
        let cfg_sig = self.config_sig();
        if !db.compatible_with(cfg_sig) {
            db.clear_artifacts();
        }
        db.config_sig = cfg_sig;

        let pta = o2_pta::analyze_budgeted(ctx, &self.pta, budget)?;
        let t_pta = pta.duration;
        let down_budget = if pta.timed_out {
            Some(Duration::from_millis(500))
        } else {
            self.pta.timeout
        };

        if pta.timed_out {
            budget.check("osa entry")?;
            let mut osa = run_osa_bounded(ctx, &pta, down_budget);
            let t_osa = osa.duration;
            budget.check("shb entry")?;
            let shb_cfg = ShbConfig {
                timeout: self.shb.timeout.or(down_budget),
                ..self.shb.clone()
            };
            let shb = build_shb(ctx, &pta, &shb_cfg, &mut osa.locs);
            let t_shb = shb.duration;
            let detect_cfg = DetectConfig {
                timeout: Some(Duration::from_millis(500)),
                ..self.detect.clone()
            };
            let races = detect_budgeted(ctx, &pta, &osa, &shb, &detect_cfg, budget)?;
            let t_detect = races.duration;
            let report = AnalysisReport {
                pta,
                osa,
                shb,
                races,
                timings: Timings {
                    pta: t_pta,
                    osa: t_osa,
                    shb: t_shb,
                    detect: t_detect,
                    total: t0.elapsed(),
                },
            };
            return Ok((report, IncrStats::default()));
        }

        budget.check("osa entry")?;
        let canon = CanonIndex::build(ctx, &pta, digests);
        let mut osa = run_osa_incremental(ctx, &pta, &canon, db, down_budget);
        let t_osa = osa.result.duration;
        budget.check("shb entry")?;
        let shb_cfg = ShbConfig {
            timeout: self.shb.timeout.or(down_budget),
            ..self.shb.clone()
        };
        let shb = build_shb_incremental(ctx, &pta, &shb_cfg, &canon, &mut osa.result.locs, db);
        let t_shb = shb.graph.duration;
        let detect_cfg = DetectConfig {
            timeout: self.detect.timeout.or(self.pta.timeout),
            ..self.detect.clone()
        };
        let det = detect_incremental_budgeted(
            ctx,
            &pta,
            &osa.result,
            &shb.graph,
            &detect_cfg,
            &canon,
            &shb.fresh_base,
            db,
            budget,
        )?;
        let t_detect = det.report.duration;

        // Commit the program identity the database now describes. Cached
        // rendered reports survive only a digest-identical program.
        if db.program_sig != digests.program {
            db.reports = None;
        }
        db.program_sig = digests.program;
        update_digest_map(&mut db.fn_digests, &digests.fns);
        update_digest_map(&mut db.closure_digests, &digests.closures);
        db.origin_sigs = pta
            .arena
            .origins()
            .map(|(o, _)| (canon.origin_digest(o), canon.origin_sig(o)))
            .collect();

        let stats = IncrStats {
            incremental: true,
            mis_replayed: osa.mis_replayed,
            mis_rescanned: osa.mis_rescanned,
            origins_replayed: shb.origins_replayed,
            origins_walked: shb.origins_walked,
            candidates_replayed: det.candidates_replayed,
            candidates_rechecked: det.candidates_rechecked,
            pairs_replayed: det.pairs_replayed,
            pairs_rechecked: det.pairs_rechecked,
            cross_program_hits: 0,
        };
        let report = AnalysisReport {
            pta,
            osa: osa.result,
            shb: shb.graph,
            races: det.report,
            timings: Timings {
                pta: t_pta,
                osa: t_osa,
                shb: t_shb,
                detect: t_detect,
                total: t0.elapsed(),
            },
        };
        Ok((report, stats))
    }

    /// Analyzes `old`, then `new` warm from `old`'s database, and
    /// reports what changed: the function-level digest diff and the
    /// replay counters of the warm run.
    pub fn diff_analyze(&self, old: &Program, new: &Program) -> DiffAnalysis {
        let mut db = AnalysisDb::new(self.config_sig());
        let (old_report, _) = self.analyze_with_db(old, &mut db);
        let (new_report, stats) = self.analyze_with_db(new, &mut db);
        let diff = digest_diff(&digest_program(old), &digest_program(new));
        DiffAnalysis {
            diff,
            old: old_report,
            new: new_report,
            stats,
            db,
        }
    }
}

/// Result of [`O2::diff_analyze`]: both end-to-end reports plus the
/// digest diff and the warm run's replay counters.
#[derive(Debug)]
pub struct DiffAnalysis {
    /// Function-level digest diff between the two versions.
    pub diff: DigestDiff,
    /// Cold report on the old program.
    pub old: AnalysisReport,
    /// Warm report on the new program (byte-equal to a cold run).
    pub new: AnalysisReport,
    /// Replay counters of the warm run.
    pub stats: IncrStats,
    /// The database after both runs (describes `new`).
    pub db: AnalysisDb,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::O2Builder;
    use o2_ir::parser::parse;

    const BASE: &str = r#"
        class S { field data; field extra; }
        class W1 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class W2 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.extra = s; }
        }
        class Main {
            static method main() {
                s = new S();
                a = new W1(s);
                b = new W2(s);
                a.start();
                b.start();
                x = s.data;
                y = s.extra;
            }
        }
    "#;

    // W2 writes `data` instead of `extra`: one function body changed.
    const EDITED: &str = r#"
        class S { field data; field extra; }
        class W1 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class W2 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; s.extra = s; }
        }
        class Main {
            static method main() {
                s = new S();
                a = new W1(s);
                b = new W2(s);
                a.start();
                b.start();
                x = s.data;
                y = s.extra;
            }
        }
    "#;

    fn render_all(program: &Program, report: &AnalysisReport) -> (String, String, String) {
        let p = report.run_pipeline(program);
        (p.render(program), p.to_json(program), p.to_sarif(program))
    }

    #[test]
    fn warm_rerun_replays_everything() {
        let program = parse(BASE).unwrap();
        let o2 = O2Builder::new().build();
        let mut db = AnalysisDb::new(o2.config_sig());
        let (cold, s0) = o2.analyze_with_db(&program, &mut db);
        assert!(s0.incremental);
        assert_eq!(s0.mis_replayed, 0);
        let (warm, s1) = o2.analyze_with_db(&program, &mut db);
        assert_eq!(s1.mis_rescanned, 0, "{}", s1.summary());
        assert_eq!(s1.origins_walked, 0, "{}", s1.summary());
        assert_eq!(s1.candidates_rechecked, 0, "{}", s1.summary());
        assert_eq!(render_all(&program, &cold), render_all(&program, &warm));
    }

    #[test]
    fn diff_analyze_matches_cold_and_recomputes_less() {
        let old = parse(BASE).unwrap();
        let new = parse(EDITED).unwrap();
        let o2 = O2Builder::new().build();
        let d = o2.diff_analyze(&old, &new);
        assert_eq!(d.diff.changed, vec!["W2.run/0".to_string()]);
        assert!(d.stats.incremental);
        assert!(d.stats.mis_replayed > 0, "{}", d.stats.summary());
        assert!(d.stats.origins_replayed > 0, "{}", d.stats.summary());
        let cold = o2.analyze(&new);
        assert_eq!(render_all(&new, &cold), render_all(&new, &d.new));
        // Strictly fewer re-checked candidates than a cold run checks.
        let total = d.stats.candidates_replayed + d.stats.candidates_rechecked;
        assert!(
            d.stats.candidates_rechecked < total,
            "{}",
            d.stats.summary()
        );
    }

    #[test]
    fn config_change_invalidates_database() {
        let program = parse(BASE).unwrap();
        let o2 = O2Builder::new().build();
        let mut db = AnalysisDb::new(o2.config_sig());
        o2.analyze_with_db(&program, &mut db);
        let naive = O2Builder::new()
            .detect_config(DetectConfig::naive())
            .build();
        assert_ne!(o2.config_sig(), naive.config_sig());
        let (_, s) = naive.analyze_with_db(&program, &mut db);
        assert!(s.incremental);
        assert_eq!(s.mis_replayed, 0, "cleared db replays nothing");
        assert_eq!(db.config_sig, naive.config_sig());
    }

    #[test]
    fn db_roundtrips_through_bytes() {
        let program = parse(BASE).unwrap();
        let o2 = O2Builder::new().build();
        let mut db = AnalysisDb::new(o2.config_sig());
        o2.analyze_with_db(&program, &mut db);
        let bytes = db.to_bytes();
        let back = AnalysisDb::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        let mut db2 = back;
        let (_, s) = o2.analyze_with_db(&program, &mut db2);
        assert_eq!(s.mis_rescanned, 0, "{}", s.summary());
        assert_eq!(s.origins_walked, 0, "{}", s.summary());
        assert_eq!(s.candidates_rechecked, 0, "{}", s.summary());
    }
}
