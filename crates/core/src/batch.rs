//! Whole-corpus analysis: the engine behind `o2 batch <manifest>`.
//!
//! A batch run analyzes every program of a manifest under one engine
//! configuration, sharing a single digest-keyed artifact pool
//! ([`SharedStore`]) across all workers. Each program is claimed by
//! exactly one worker, checked out a private database seeded from the
//! pool, analyzed with the ordinary incremental pipeline, and published
//! back — so any function body two programs share is analyzed once and
//! replayed everywhere else. Because each program is analyzed exactly
//! once per batch, every replay its [`IncrStats`] counts is necessarily
//! a *cross-program* hit, and [`run_batch`] records it as such.
//!
//! Scheduling is a std-only work-stealing pool: `workers` scoped threads
//! race on one atomic claim counter; whoever claims index `i` analyzes
//! entry `i`. The merged JSON and SARIF reports are byte-identical for
//! every worker count and claim order — they are pure functions of the
//! per-program reports sorted by program name, and replay is
//! byte-identical to recompute by the store's invariant. Only the
//! [`BatchReport::summary`] table (wall times, hit counts) is
//! scheduling-dependent, which is why it is a separate artifact.

use crate::incremental::IncrStats;
use crate::{AnalysisReport, O2};
use o2_db::{SharedStore, StoreStats};
use o2_ir::{O2Error, Program, ProgramCtx, ProgramId};
use o2_passes::{PipelineReport, Tier};
use std::fmt::Write as _;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One named program of a batch manifest. A program that failed to load
/// (unreadable file, parse error, unknown workload) carries its typed
/// error instead: the batch analyzes everything that loaded and reports
/// the failures as per-program error entries in the merged output, so
/// one bad program never aborts a corpus run.
#[derive(Debug)]
pub struct BatchEntry {
    /// Report key; must be unique within the batch.
    pub name: String,
    /// The program to analyze, or why it could not be loaded.
    pub program: Result<Program, O2Error>,
}

/// Parses a batch manifest: one entry per line, `#` comments and blank
/// lines ignored. Each line is either
///
/// - a workload spec the unified registry resolves (`avrora`,
///   `mega-smoke`, `realbug:ZooKeeper`, `realbug-c:Memcached`), or
/// - `<name> = <path>` — analyze the `.o2` (or `.c`) source file at
///   `path`, reported under `name`. Relative paths resolve against the
///   manifest's directory.
///
/// Duplicate names are an error: the merged report is keyed by name.
///
/// A syntactically valid line whose program fails to *load* — the path
/// is unreadable, the source does not parse, the workload spec is
/// unknown — is not a manifest error: it becomes an entry carrying the
/// typed [`O2Error`], which the batch run reports without aborting the
/// rest of the corpus. Only malformed manifest structure (empty name or
/// path, duplicate names, an empty manifest) fails the whole parse.
pub fn parse_manifest(text: &str, base: &std::path::Path) -> Result<Vec<BatchEntry>, String> {
    let mut entries: Vec<BatchEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let entry = if let Some((name, path)) = line.split_once('=') {
            let (name, path) = (name.trim(), path.trim());
            if name.is_empty() || path.is_empty() {
                return Err(format!("manifest line {}: empty name or path", lineno + 1));
            }
            let full = base.join(path);
            let program = match std::fs::read_to_string(&full) {
                Err(e) => Err(O2Error::Io(format!("cannot read {path}: {e}"))),
                Ok(src) => if path.ends_with(".c") {
                    o2_ir::cfront::parse_c(&src)
                } else {
                    o2_ir::parser::parse(&src)
                }
                .map_err(O2Error::from),
            };
            BatchEntry {
                name: name.to_string(),
                program,
            }
        } else {
            match o2_workloads::workload_by_name(line) {
                Some(w) => BatchEntry {
                    name: w.name,
                    program: Ok(w.program),
                },
                None => BatchEntry {
                    name: line.to_string(),
                    program: Err(O2Error::Resolve(format!("unknown workload {line}"))),
                },
            }
        };
        if entries.iter().any(|e| e.name == entry.name) {
            return Err(format!(
                "manifest line {}: duplicate program name {}",
                lineno + 1,
                entry.name
            ));
        }
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err("manifest has no entries".to_string());
    }
    Ok(entries)
}

/// Per-program outcome of a batch run (summary-table data; the full
/// triaged report lives in [`BatchReport::json`]/[`BatchReport::sarif`]).
#[derive(Debug)]
pub struct ProgramOutcome {
    /// The manifest name.
    pub name: String,
    /// Surviving races by tier: (high, medium, low). All zero when the
    /// entry failed.
    pub tiers: (usize, usize, usize),
    /// Replay/recompute counters, with `cross_program_hits` set.
    pub stats: IncrStats,
    /// Wall time of this program's analysis (scheduling-dependent).
    pub wall_ms: f64,
    /// Why this entry produced no report: a load failure carried in
    /// from the manifest, or a panic the batch worker caught. `None`
    /// for every successfully analyzed program.
    pub error: Option<O2Error>,
}

/// Everything a batch run produces.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-program outcomes, sorted by name.
    pub programs: Vec<ProgramOutcome>,
    /// The merged JSON report ([`o2_passes::corpus_json`] bytes).
    pub json: String,
    /// The merged SARIF report ([`o2_passes::corpus_sarif`] bytes).
    pub sarif: String,
    /// Shared-store accounting for the whole run.
    pub store: StoreStats,
    /// Wall time of the whole batch.
    pub wall_ms: f64,
}

impl BatchReport {
    /// The first failing entry in name order, if any — the CLI maps its
    /// stage to the process exit code when the corpus has no races.
    pub fn first_error(&self) -> Option<&O2Error> {
        self.programs.iter().find_map(|p| p.error.as_ref())
    }

    /// Number of entries that failed (load errors plus caught panics).
    pub fn error_count(&self) -> usize {
        self.programs.iter().filter(|p| p.error.is_some()).count()
    }

    /// Total cross-program digest hits across all programs.
    pub fn cross_program_hits(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.stats.cross_program_hits)
            .sum()
    }

    /// Total surviving races across all programs.
    pub fn total_races(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.tiers.0 + p.tiers.1 + p.tiers.2)
            .sum()
    }

    /// Fraction of artifact lookups served by replay, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let (mut hits, mut total) = (0usize, 0usize);
        for p in &self.programs {
            let s = &p.stats;
            hits += s.total_replays();
            total +=
                s.total_replays() + s.mis_rescanned + s.origins_walked + s.candidates_rechecked;
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The corpus summary table. Wall times and hit counts here depend
    /// on scheduling; everything byte-pinned lives in `json`/`sarif`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>5} {:>6} {:>4} {:>10} {:>9}",
            "program", "high", "medium", "low", "xprog-hits", "wall-ms"
        );
        for p in &self.programs {
            if let Some(err) = &p.error {
                let _ = writeln!(
                    out,
                    "{:<28} error at stage {}: {}",
                    p.name,
                    err.stage(),
                    err
                );
                continue;
            }
            let _ = writeln!(
                out,
                "{:<28} {:>5} {:>6} {:>4} {:>10} {:>9.1}",
                p.name, p.tiers.0, p.tiers.1, p.tiers.2, p.stats.cross_program_hits, p.wall_ms
            );
        }
        let _ = writeln!(
            out,
            "corpus: {} programs, {} races, {} errors, {} cross-program hits \
             ({:.1}% replay rate), {:.1} ms",
            self.programs.len(),
            self.total_races(),
            self.error_count(),
            self.cross_program_hits(),
            self.hit_rate() * 100.0,
            self.wall_ms
        );
        let s = &self.store;
        let _ = writeln!(
            out,
            "store: {} checkouts, {} publishes, {} artifacts pooled ({} offered, \
             {} digest collisions, {:.1}% collision rate), {:.1}% cross-program hit rate",
            s.checkouts,
            s.publishes,
            s.artifacts_accepted,
            s.artifacts_offered,
            s.digest_collisions(),
            s.collision_rate() * 100.0,
            self.hit_rate() * 100.0,
        );
        out
    }
}

struct Slot {
    /// `None` when the entry failed (outcome carries the error).
    pipeline: Option<PipelineReport>,
    outcome: ProgramOutcome,
}

fn error_outcome(name: &str, error: O2Error, wall_ms: f64) -> ProgramOutcome {
    ProgramOutcome {
        name: name.to_string(),
        tiers: (0, 0, 0),
        stats: IncrStats::default(),
        wall_ms,
        error: Some(error),
    }
}

/// Analyzes every entry under `engine`'s configuration with `workers`
/// threads sharing one artifact pool. See the module docs for the
/// determinism contract.
pub fn run_batch(engine: &O2, entries: &[BatchEntry], workers: usize) -> BatchReport {
    let store = SharedStore::new(engine.config_sig());
    run_batch_with_store(engine, entries, workers, &store)
}

/// [`run_batch`] against a caller-provided artifact pool. The pool must
/// carry `engine.config_sig()` (checkout/publish assert it); after the
/// run its accumulated artifacts can be snapshotted and persisted, which
/// is how `o2 batch --save-db` seeds a daemon's warm start.
pub fn run_batch_with_store(
    engine: &O2,
    entries: &[BatchEntry],
    workers: usize,
    store: &SharedStore,
) -> BatchReport {
    let workers = workers.max(1);
    let t0 = Instant::now();
    let claim = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..entries.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(entries.len()) {
            scope.spawn(|| loop {
                let i = claim.fetch_add(1, Ordering::Relaxed);
                if i >= entries.len() {
                    break;
                }
                let entry = &entries[i];
                let t = Instant::now();
                let program = match &entry.program {
                    Ok(p) => p,
                    Err(e) => {
                        slots.lock().expect("batch slots poisoned")[i] = Some(Slot {
                            pipeline: None,
                            outcome: error_outcome(&entry.name, e.clone(), 0.0),
                        });
                        continue;
                    }
                };
                // ProgramId is the manifest index: unique per entry, and
                // purely internal — nothing id-derived reaches a report.
                let ctx = ProgramCtx::new(ProgramId(i as u32), &entry.name, program);
                // Panic backstop: a bug in one program's analysis becomes
                // that entry's error; the worker claims the next entry.
                let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut db = store.checkout();
                    let (report, mut stats): (AnalysisReport, IncrStats) =
                        engine.analyze_with_db_ctx(&ctx, &mut db);
                    // Each program runs once per batch, so every replay
                    // came from an artifact another program published.
                    stats.cross_program_hits = stats.total_replays();
                    store.publish(&db);
                    (report.run_pipeline(program), stats)
                }));
                let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
                let slot = match run {
                    Ok((pipeline, stats)) => {
                        let outcome = ProgramOutcome {
                            name: entry.name.clone(),
                            tiers: (
                                pipeline.tier_count(Tier::High),
                                pipeline.tier_count(Tier::Medium),
                                pipeline.tier_count(Tier::Low),
                            ),
                            stats,
                            wall_ms,
                            error: None,
                        };
                        Slot {
                            pipeline: Some(pipeline),
                            outcome,
                        }
                    }
                    Err(payload) => Slot {
                        pipeline: None,
                        outcome: error_outcome(&entry.name, O2Error::from_panic(payload), wall_ms),
                    },
                };
                slots.lock().expect("batch slots poisoned")[i] = Some(slot);
            });
        }
    });

    let slots = slots.into_inner().expect("batch slots poisoned");
    let mut done: Vec<(usize, Slot)> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i, s.expect("every claimed entry completes")))
        .collect();
    done.sort_by(|a, b| entries[a.0].name.cmp(&entries[b.0].name));

    let merged: Vec<(&str, &PipelineReport, &Program)> = done
        .iter()
        .filter_map(|(i, s)| {
            let pipeline = s.pipeline.as_ref()?;
            let program = entries[*i]
                .program
                .as_ref()
                .expect("a pipeline report implies the program loaded");
            Some((entries[*i].name.as_str(), pipeline, program))
        })
        .collect();
    let errors: Vec<(&str, &O2Error)> = done
        .iter()
        .filter_map(|(i, s)| Some((entries[*i].name.as_str(), s.outcome.error.as_ref()?)))
        .collect();
    let json = o2_passes::corpus_json_with_errors(&merged, &errors);
    let sarif = o2_passes::corpus_sarif_with_errors(&merged, &errors);

    BatchReport {
        programs: done.into_iter().map(|(_, s)| s.outcome).collect(),
        json,
        sarif,
        store: store.stats(),
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    }
}
