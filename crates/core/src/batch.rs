//! Whole-corpus analysis: the engine behind `o2 batch <manifest>`.
//!
//! A batch run analyzes every program of a manifest under one engine
//! configuration, sharing a single digest-keyed artifact pool
//! ([`SharedStore`]) across all workers. Each program is claimed by
//! exactly one worker, checked out a private database seeded from the
//! pool, analyzed with the ordinary incremental pipeline, and published
//! back — so any function body two programs share is analyzed once and
//! replayed everywhere else. Because each program is analyzed exactly
//! once per batch, every replay its [`IncrStats`] counts is necessarily
//! a *cross-program* hit, and [`run_batch`] records it as such.
//!
//! Scheduling is a std-only work-stealing pool: `workers` scoped threads
//! race on one atomic claim counter; whoever claims index `i` analyzes
//! entry `i`. The merged JSON and SARIF reports are byte-identical for
//! every worker count and claim order — they are pure functions of the
//! per-program reports sorted by program name, and replay is
//! byte-identical to recompute by the store's invariant. Only the
//! [`BatchReport::summary`] table (wall times, hit counts) is
//! scheduling-dependent, which is why it is a separate artifact.

use crate::incremental::IncrStats;
use crate::{AnalysisReport, O2};
use o2_db::{SharedStore, StoreStats};
use o2_ir::{Program, ProgramCtx, ProgramId};
use o2_passes::{PipelineReport, Tier};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One named program of a batch manifest.
#[derive(Debug)]
pub struct BatchEntry {
    /// Report key; must be unique within the batch.
    pub name: String,
    /// The program to analyze.
    pub program: Program,
}

/// Parses a batch manifest: one entry per line, `#` comments and blank
/// lines ignored. Each line is either
///
/// - a workload spec the unified registry resolves (`avrora`,
///   `mega-smoke`, `realbug:ZooKeeper`, `realbug-c:Memcached`), or
/// - `<name> = <path>` — analyze the `.o2` (or `.c`) source file at
///   `path`, reported under `name`. Relative paths resolve against the
///   manifest's directory.
///
/// Duplicate names are an error: the merged report is keyed by name.
pub fn parse_manifest(text: &str, base: &std::path::Path) -> Result<Vec<BatchEntry>, String> {
    let mut entries: Vec<BatchEntry> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let entry = if let Some((name, path)) = line.split_once('=') {
            let (name, path) = (name.trim(), path.trim());
            if name.is_empty() || path.is_empty() {
                return Err(format!("manifest line {}: empty name or path", lineno + 1));
            }
            let full = base.join(path);
            let src = std::fs::read_to_string(&full)
                .map_err(|e| format!("manifest line {}: cannot read {path}: {e}", lineno + 1))?;
            let program = if path.ends_with(".c") {
                o2_ir::cfront::parse_c(&src)
            } else {
                o2_ir::parser::parse(&src)
            }
            .map_err(|e| format!("manifest line {}: {path}: {e}", lineno + 1))?;
            BatchEntry {
                name: name.to_string(),
                program,
            }
        } else {
            let w = o2_workloads::workload_by_name(line)
                .ok_or_else(|| format!("manifest line {}: unknown workload {line}", lineno + 1))?;
            BatchEntry {
                name: w.name,
                program: w.program,
            }
        };
        if entries.iter().any(|e| e.name == entry.name) {
            return Err(format!(
                "manifest line {}: duplicate program name {}",
                lineno + 1,
                entry.name
            ));
        }
        entries.push(entry);
    }
    if entries.is_empty() {
        return Err("manifest has no entries".to_string());
    }
    Ok(entries)
}

/// Per-program outcome of a batch run (summary-table data; the full
/// triaged report lives in [`BatchReport::json`]/[`BatchReport::sarif`]).
#[derive(Debug)]
pub struct ProgramOutcome {
    /// The manifest name.
    pub name: String,
    /// Surviving races by tier: (high, medium, low).
    pub tiers: (usize, usize, usize),
    /// Replay/recompute counters, with `cross_program_hits` set.
    pub stats: IncrStats,
    /// Wall time of this program's analysis (scheduling-dependent).
    pub wall_ms: f64,
}

/// Everything a batch run produces.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-program outcomes, sorted by name.
    pub programs: Vec<ProgramOutcome>,
    /// The merged JSON report ([`o2_passes::corpus_json`] bytes).
    pub json: String,
    /// The merged SARIF report ([`o2_passes::corpus_sarif`] bytes).
    pub sarif: String,
    /// Shared-store accounting for the whole run.
    pub store: StoreStats,
    /// Wall time of the whole batch.
    pub wall_ms: f64,
}

impl BatchReport {
    /// Total cross-program digest hits across all programs.
    pub fn cross_program_hits(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.stats.cross_program_hits)
            .sum()
    }

    /// Total surviving races across all programs.
    pub fn total_races(&self) -> usize {
        self.programs
            .iter()
            .map(|p| p.tiers.0 + p.tiers.1 + p.tiers.2)
            .sum()
    }

    /// Fraction of artifact lookups served by replay, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let (mut hits, mut total) = (0usize, 0usize);
        for p in &self.programs {
            let s = &p.stats;
            hits += s.total_replays();
            total +=
                s.total_replays() + s.mis_rescanned + s.origins_walked + s.candidates_rechecked;
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// The corpus summary table. Wall times and hit counts here depend
    /// on scheduling; everything byte-pinned lives in `json`/`sarif`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>5} {:>6} {:>4} {:>10} {:>9}",
            "program", "high", "medium", "low", "xprog-hits", "wall-ms"
        );
        for p in &self.programs {
            let _ = writeln!(
                out,
                "{:<28} {:>5} {:>6} {:>4} {:>10} {:>9.1}",
                p.name, p.tiers.0, p.tiers.1, p.tiers.2, p.stats.cross_program_hits, p.wall_ms
            );
        }
        let _ = writeln!(
            out,
            "corpus: {} programs, {} races, {} cross-program hits ({:.1}% replay rate), {:.1} ms",
            self.programs.len(),
            self.total_races(),
            self.cross_program_hits(),
            self.hit_rate() * 100.0,
            self.wall_ms
        );
        let s = &self.store;
        let _ = writeln!(
            out,
            "store: {} checkouts, {} publishes, {} artifacts pooled ({} offered, \
             {} digest collisions, {:.1}% collision rate), {:.1}% cross-program hit rate",
            s.checkouts,
            s.publishes,
            s.artifacts_accepted,
            s.artifacts_offered,
            s.digest_collisions(),
            s.collision_rate() * 100.0,
            self.hit_rate() * 100.0,
        );
        out
    }
}

struct Slot {
    pipeline: PipelineReport,
    outcome: ProgramOutcome,
}

/// Analyzes every entry under `engine`'s configuration with `workers`
/// threads sharing one artifact pool. See the module docs for the
/// determinism contract.
pub fn run_batch(engine: &O2, entries: &[BatchEntry], workers: usize) -> BatchReport {
    let store = SharedStore::new(engine.config_sig());
    run_batch_with_store(engine, entries, workers, &store)
}

/// [`run_batch`] against a caller-provided artifact pool. The pool must
/// carry `engine.config_sig()` (checkout/publish assert it); after the
/// run its accumulated artifacts can be snapshotted and persisted, which
/// is how `o2 batch --save-db` seeds a daemon's warm start.
pub fn run_batch_with_store(
    engine: &O2,
    entries: &[BatchEntry],
    workers: usize,
    store: &SharedStore,
) -> BatchReport {
    let workers = workers.max(1);
    let t0 = Instant::now();
    let claim = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..entries.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(entries.len()) {
            scope.spawn(|| loop {
                let i = claim.fetch_add(1, Ordering::Relaxed);
                if i >= entries.len() {
                    break;
                }
                let entry = &entries[i];
                // ProgramId is the manifest index: unique per entry, and
                // purely internal — nothing id-derived reaches a report.
                let ctx = ProgramCtx::new(ProgramId(i as u32), &entry.name, &entry.program);
                let t = Instant::now();
                let mut db = store.checkout();
                let (report, mut stats): (AnalysisReport, IncrStats) =
                    engine.analyze_with_db_ctx(&ctx, &mut db);
                // Each program runs once per batch, so every replay came
                // from an artifact another program published.
                stats.cross_program_hits = stats.total_replays();
                store.publish(&db);
                let pipeline = report.run_pipeline(&entry.program);
                let outcome = ProgramOutcome {
                    name: entry.name.clone(),
                    tiers: (
                        pipeline.tier_count(Tier::High),
                        pipeline.tier_count(Tier::Medium),
                        pipeline.tier_count(Tier::Low),
                    ),
                    stats,
                    wall_ms: t.elapsed().as_secs_f64() * 1000.0,
                };
                slots.lock().expect("batch slots poisoned")[i] = Some(Slot { pipeline, outcome });
            });
        }
    });

    let slots = slots.into_inner().expect("batch slots poisoned");
    let mut done: Vec<(usize, Slot)> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| (i, s.expect("every claimed entry completes")))
        .collect();
    done.sort_by(|a, b| entries[a.0].name.cmp(&entries[b.0].name));

    let merged: Vec<(&str, &PipelineReport, &Program)> = done
        .iter()
        .map(|(i, s)| (entries[*i].name.as_str(), &s.pipeline, &entries[*i].program))
        .collect();
    let json = o2_passes::corpus_json(&merged);
    let sarif = o2_passes::corpus_sarif(&merged);

    BatchReport {
        programs: done.into_iter().map(|(_, s)| s.outcome).collect(),
        json,
        sarif,
        store: store.stats(),
        wall_ms: t0.elapsed().as_secs_f64() * 1000.0,
    }
}
