//! Deterministic open-system load generation for `o2 serve`.
//!
//! `o2 loadgen <addr>` drives a running daemon with a pre-generated,
//! seeded request schedule and reports throughput and latency
//! percentiles split cold vs. warm. The schedule is an *open system*
//! (ROADMAP item 2): arrivals are Poisson — exponential inter-arrival
//! times at a target rate — and each arrival draws its workload from a
//! Zipf distribution over the configured specs, with a coin flip for
//! "analyze an edited variant" (which exercises artifact-level warm
//! replay instead of the whole-report digest hit).
//!
//! Latency is measured from each request's *scheduled* arrival time,
//! not from when the client got around to sending it, so a server that
//! falls behind accumulates queueing delay in the numbers instead of
//! silently stretching the schedule (the coordinated-omission trap).
//! With `rate = 0` the driver degrades to a closed loop — each client
//! sends back-to-back — and latency is measured from the send instant.
//!
//! Everything random flows from one [`SplitMix64`] stream seeded by
//! [`LoadgenConfig::seed`]: same seed, same schedule, byte-for-byte.
//! With [`LoadgenConfig::verify`] set, every response's `output` field
//! is compared against a locally computed solo-CLI oracle
//! ([`crate::serve::solo_reports`]) — sharing changes how fast the
//! daemon answers, never what it answers.

use crate::serve::{json_escape, solo_reports, Client, JsonValue};
use crate::O2;
use o2_db::FastMap;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Randomness.
// ---------------------------------------------------------------------

/// The SplitMix64 generator: tiny, seedable, and plenty for load
/// scheduling (this is a driver, not a cryptosystem).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An exponential draw with rate `lambda` (mean `1/lambda`).
    pub fn next_exp(&mut self, lambda: f64) -> f64 {
        -(1.0 - self.next_f64()).ln() / lambda
    }
}

/// A Zipf sampler over ranks `0..n`: rank `r` has weight
/// `1/(r+1)^s`. With `s = 0` it degrades to uniform.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draws a rank in `0..n`.
    pub fn draw(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

// ---------------------------------------------------------------------
// Latency accounting.
// ---------------------------------------------------------------------

/// Percentile summary of one latency population, in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencyStats {
    /// Summarizes `samples` (milliseconds). Percentiles use the
    /// nearest-rank method; an empty population yields all zeros.
    pub fn from_ms(mut samples: Vec<f64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = samples.len();
        let pct = |p: f64| -> f64 {
            let rank = ((p / 100.0) * n as f64).ceil() as usize;
            samples[rank.clamp(1, n) - 1]
        };
        LatencyStats {
            n,
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
            mean: samples.iter().sum::<f64>() / n as f64,
            min: samples[0],
            max: samples[n - 1],
        }
    }
}

// ---------------------------------------------------------------------
// Configuration and schedule.
// ---------------------------------------------------------------------

/// Knobs of one loadgen run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Seed of the one RNG stream everything draws from.
    pub seed: u64,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Target arrival rate in requests/second across the whole run
    /// (Poisson). `0` = closed loop: each client sends back-to-back.
    pub rate: f64,
    /// Workload specs drawn from (Zipf by list position).
    pub workloads: Vec<String>,
    /// Zipf exponent over `workloads` (0 = uniform).
    pub zipf_s: f64,
    /// Probability a request analyzes an edited variant.
    pub edit_prob: f64,
    /// Edited requests draw an edit depth in `1..=max_edit`.
    pub max_edit: u32,
    /// Byte-compare every response against the local solo oracle.
    pub verify: bool,
    /// Send a `shutdown` request after the run.
    pub shutdown: bool,
    /// Probability a scheduled request is replaced by an injected
    /// malformed one (broken inline source, unknown workload, unknown
    /// op, or a non-JSON line). The daemon must answer each with a
    /// structured `"ok":false` line and keep the connection alive;
    /// anything else counts as an error.
    pub malformed_frac: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 0xa11ce,
            clients: 4,
            requests: 64,
            rate: 0.0,
            workloads: vec!["avrora".to_string(), "lusearch".to_string()],
            zipf_s: 1.0,
            edit_prob: 0.25,
            max_edit: 2,
            verify: false,
            shutdown: false,
            malformed_frac: 0.0,
        }
    }
}

struct Scheduled {
    /// Seconds after t0 this request is due (0 in closed-loop mode).
    arrival_s: f64,
    /// The request line to send.
    line: String,
    /// Oracle key: `spec#edit` (empty for injected malformed requests,
    /// which the oracle skips).
    key: String,
    /// Which client connection carries it.
    client: usize,
    /// Injected malformed request: the expected outcome is a structured
    /// error response, not a report.
    expect_err: bool,
}

/// One response's accounting.
struct Sample {
    ms: f64,
    warm: bool,
    ok: bool,
    matched: bool,
    /// Mirrors [`Scheduled::expect_err`].
    injected: bool,
    /// The daemon answered a parseable response line (as opposed to a
    /// transport failure or closed connection).
    answered: bool,
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests sent.
    pub requests: usize,
    /// Responses with `"ok":false` (or transport failures).
    pub errors: usize,
    /// Responses whose `output` differed from the solo oracle (always 0
    /// unless [`LoadgenConfig::verify`] was set — and must be 0 then).
    pub mismatches: usize,
    /// Responses answered warm (`digest_hit` or ≥ 1 artifact replay).
    pub warm_responses: usize,
    /// Injected malformed requests sent (`malformed_frac` > 0).
    pub malformed: usize,
    /// Injected requests the daemon answered with a structured
    /// `"ok":false` line on a surviving connection (the expected
    /// outcome; anything else counts in `errors`).
    pub malformed_ok: usize,
    /// Wall time of the whole run.
    pub wall_ms: f64,
    /// Completed analyses per second of wall time.
    pub analyses_per_sec: f64,
    /// Latency of cold responses.
    pub cold: LatencyStats,
    /// Latency of warm responses.
    pub warm: LatencyStats,
    /// Latency of all responses.
    pub all: LatencyStats,
    /// Latency of answered injected-error responses.
    pub err: LatencyStats,
}

impl LoadgenReport {
    /// The human-readable summary `o2 loadgen` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} requests in {:.1} ms ({:.1} analyses/sec), \
             {} warm, {} errors, {} mismatches",
            self.requests,
            self.wall_ms,
            self.analyses_per_sec,
            self.warm_responses,
            self.errors,
            self.mismatches,
        );
        if self.malformed > 0 {
            let _ = writeln!(
                out,
                "error injection: {} malformed sent, {} answered with a \
                 structured error ({:.1}% error rate by design)",
                self.malformed,
                self.malformed_ok,
                100.0 * self.malformed as f64 / self.requests.max(1) as f64,
            );
        }
        let row = |name: &str, s: &LatencyStats| {
            format!(
                "{name:<6} n={:<5} p50={:>8.2}ms p90={:>8.2}ms p99={:>8.2}ms mean={:>8.2}ms",
                s.n, s.p50, s.p90, s.p99, s.mean
            )
        };
        let _ = writeln!(out, "{}", row("cold", &self.cold));
        let _ = writeln!(out, "{}", row("warm", &self.warm));
        let _ = writeln!(out, "{}", row("all", &self.all));
        if self.malformed > 0 {
            let _ = writeln!(out, "{}", row("err", &self.err));
        }
        out
    }
}

/// Generates the full request schedule for `config`. Exposed so the
/// PR 9 bench can reuse the exact CLI schedule shape.
fn build_schedule(config: &LoadgenConfig) -> Result<Vec<Scheduled>, String> {
    if config.workloads.is_empty() {
        return Err("loadgen needs at least one workload".to_string());
    }
    // Resolve every spec up front: unknown names fail fast, and specs
    // without an editable memory access never draw an edit (the server
    // would answer a structured error).
    let mut editable = Vec::with_capacity(config.workloads.len());
    for spec in &config.workloads {
        let w = o2_workloads::workload_by_name(spec)
            .ok_or_else(|| format!("unknown workload {spec:?}"))?;
        editable.push(crate::serve::has_memory_access(&w.program));
    }
    let mut rng = SplitMix64::new(config.seed);
    let zipf = Zipf::new(config.workloads.len(), config.zipf_s);
    let mut schedule = Vec::with_capacity(config.requests);
    let mut clock = 0.0f64;
    for i in 0..config.requests {
        if config.rate > 0.0 {
            clock += rng.next_exp(config.rate);
        }
        if config.malformed_frac > 0.0 && rng.next_f64() < config.malformed_frac {
            // Injected error request. Four rotating shapes, all of which
            // the daemon must answer with a structured `"ok":false` line
            // (never an empty line — the server skips those, so the
            // client would hang waiting for a response).
            let line = match rng.next_u64() % 4 {
                0 => "{\"op\":\"analyze\",\"source\":\"class Broken {\"}".to_string(),
                1 => "{\"op\":\"analyze\",\"workload\":\"no-such-workload\"}".to_string(),
                2 => "{\"op\":\"frobnicate\"}".to_string(),
                _ => "this is not json".to_string(),
            };
            schedule.push(Scheduled {
                arrival_s: clock,
                line,
                key: String::new(),
                client: i % config.clients.max(1),
                expect_err: true,
            });
            continue;
        }
        let w = zipf.draw(&mut rng);
        let spec = &config.workloads[w];
        let edit = if editable[w] && config.max_edit > 0 && rng.next_f64() < config.edit_prob {
            1 + (rng.next_u64() % config.max_edit as u64) as u32
        } else {
            0
        };
        let mut line = format!(
            "{{\"op\":\"analyze\",\"workload\":\"{}\"",
            json_escape(spec)
        );
        if edit > 0 {
            use std::fmt::Write as _;
            let _ = write!(line, ",\"edit\":{edit}");
        }
        line.push('}');
        schedule.push(Scheduled {
            arrival_s: clock,
            line,
            key: format!("{spec}#{edit}"),
            client: i % config.clients.max(1),
            expect_err: false,
        });
    }
    Ok(schedule)
}

/// Computes the solo-CLI oracle for every distinct `(spec, edit)` the
/// schedule draws. Cold-runs each one locally, so this happens before
/// the clock starts.
fn build_oracle(engine: &O2, schedule: &[Scheduled]) -> Result<FastMap<String, String>, String> {
    let mut oracle: FastMap<String, String> = FastMap::default();
    for s in schedule {
        if s.expect_err || oracle.contains_key(&s.key) {
            continue;
        }
        let (spec, edit) = s.key.rsplit_once('#').expect("oracle keys are spec#edit");
        let edit: u32 = edit.parse().expect("edit depth is numeric");
        let w = o2_workloads::workload_by_name(spec)
            .ok_or_else(|| format!("unknown workload {spec:?}"))?;
        let mut program = w.program;
        for _ in 0..edit {
            program = o2_workloads::single_function_edit(&program).0;
        }
        oracle.insert(s.key.clone(), solo_reports(engine, &program).text);
    }
    Ok(oracle)
}

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

fn classify(map: &BTreeMap<String, JsonValue>) -> (bool, bool) {
    let ok = map.get("ok").and_then(|v| v.as_bool()).unwrap_or(false);
    let warm = map
        .get("digest_hit")
        .and_then(|v| v.as_bool())
        .unwrap_or(false)
        || map.get("replays").and_then(|v| v.as_u64()).unwrap_or(0) > 0;
    (ok, warm)
}

/// Runs the configured load against a daemon at `addr` and gathers the
/// latency report. `engine` must match the daemon's configuration when
/// [`LoadgenConfig::verify`] is set (it computes the solo oracle).
pub fn run_loadgen(
    addr: &str,
    engine: &O2,
    config: &LoadgenConfig,
) -> Result<LoadgenReport, String> {
    let schedule = build_schedule(config)?;
    let oracle = if config.verify {
        Some(build_oracle(engine, &schedule)?)
    } else {
        None
    };
    let clients = config.clients.max(1);
    // Partition by client, preserving arrival order within each.
    let mut per_client: Vec<Vec<&Scheduled>> = (0..clients).map(|_| Vec::new()).collect();
    for s in &schedule {
        per_client[s.client].push(s);
    }
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(schedule.len()));
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for mine in &per_client {
            let samples = &samples;
            let failure = &failure;
            let oracle = oracle.as_ref();
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        *failure.lock().expect("loadgen failure slot poisoned") =
                            Some(format!("connect {addr}: {e}"));
                        return;
                    }
                };
                let mut local = Vec::with_capacity(mine.len());
                for s in mine {
                    let due = t0 + Duration::from_secs_f64(s.arrival_s);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    // Open system: latency from the scheduled arrival.
                    // Closed loop (rate 0): from the send instant.
                    let base = if config.rate > 0.0 {
                        due
                    } else {
                        Instant::now()
                    };
                    match client.request(&s.line) {
                        Ok(map) => {
                            let ms = base.elapsed().as_secs_f64() * 1e3;
                            let (ok, warm) = classify(&map);
                            let matched = match oracle {
                                None => true,
                                Some(_) if s.expect_err => true,
                                Some(o) => {
                                    map.get("output").and_then(|v| v.as_str())
                                        == o.get(&s.key).map(|s| s.as_str())
                                }
                            };
                            local.push(Sample {
                                ms,
                                warm,
                                ok,
                                matched,
                                injected: s.expect_err,
                                answered: true,
                            });
                        }
                        Err(e) => {
                            let ms = base.elapsed().as_secs_f64() * 1e3;
                            local.push(Sample {
                                ms,
                                warm: false,
                                ok: false,
                                matched: true,
                                injected: s.expect_err,
                                answered: false,
                            });
                            let _ = e;
                        }
                    }
                }
                samples
                    .lock()
                    .expect("loadgen samples poisoned")
                    .extend(local);
            });
        }
    });
    if let Some(err) = failure.into_inner().expect("loadgen failure slot poisoned") {
        return Err(err);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if config.shutdown {
        let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = c.send_line("{\"op\":\"shutdown\"}");
    }
    let samples = samples.into_inner().expect("loadgen samples poisoned");
    let malformed = samples.iter().filter(|s| s.injected).count();
    // An injected request succeeds when the daemon answered a structured
    // `"ok":false` line; a transport failure or an `"ok":true` answer to
    // garbage both count as errors.
    let malformed_ok = samples
        .iter()
        .filter(|s| s.injected && s.answered && !s.ok)
        .count();
    let errors =
        samples.iter().filter(|s| !s.injected && !s.ok).count() + (malformed - malformed_ok);
    let mismatches = samples.iter().filter(|s| !s.matched).count();
    let warm_responses = samples.iter().filter(|s| s.ok && s.warm).count();
    let cold_ms: Vec<f64> = samples
        .iter()
        .filter(|s| s.ok && !s.warm)
        .map(|s| s.ms)
        .collect();
    let warm_ms: Vec<f64> = samples
        .iter()
        .filter(|s| s.ok && s.warm)
        .map(|s| s.ms)
        .collect();
    let all_ms: Vec<f64> = samples.iter().filter(|s| s.ok).map(|s| s.ms).collect();
    let err_ms: Vec<f64> = samples
        .iter()
        .filter(|s| s.injected && s.answered)
        .map(|s| s.ms)
        .collect();
    let completed = all_ms.len();
    Ok(LoadgenReport {
        requests: samples.len(),
        errors,
        mismatches,
        warm_responses,
        malformed,
        malformed_ok,
        wall_ms,
        analyses_per_sec: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        cold: LatencyStats::from_ms(cold_ms),
        warm: LatencyStats::from_ms(warm_ms),
        all: LatencyStats::from_ms(all_ms),
        err: LatencyStats::from_ms(err_ms),
    })
}

// ---------------------------------------------------------------------
// Smoke mode.
// ---------------------------------------------------------------------

/// The CI smoke (`o2 loadgen <addr> --smoke`): one cold request, one
/// warm repeat, both byte-compared against the local solo oracle, plus
/// a stats round-trip and an error-plane probe (a non-JSON line and a
/// `deadline_ms: 0` request must both answer structured errors without
/// killing the connection). `engine` must match the daemon's
/// configuration. Returns a one-line summary, or the first discrepancy
/// as an error.
pub fn run_smoke(addr: &str, engine: &O2, shutdown: bool) -> Result<String, String> {
    let spec = "realbug:ZooKeeper";
    let w = o2_workloads::workload_by_name(spec).expect("smoke workload exists");
    let solo = solo_reports(engine, &w.program);
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let ping = client.request("{\"op\":\"ping\"}")?;
    if ping.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        return Err("ping failed".to_string());
    }
    let line = format!("{{\"op\":\"analyze\",\"workload\":\"{spec}\"}}");
    let t = Instant::now();
    let cold = client.request(&line)?;
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    if cold.get("output").and_then(|v| v.as_str()) != Some(solo.text.as_str()) {
        return Err("cold response differs from solo CLI output".to_string());
    }
    let t = Instant::now();
    let warm = client.request(&line)?;
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    if warm.get("digest_hit").and_then(|v| v.as_bool()) != Some(true) {
        return Err("warm repeat did not report a digest hit".to_string());
    }
    if warm.get("output").and_then(|v| v.as_str()) != Some(solo.text.as_str()) {
        return Err("warm response differs from solo CLI output".to_string());
    }
    let stats = client.request("{\"op\":\"stats\"}")?;
    if stats
        .get("report_hits")
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
        < 1
    {
        return Err("stats did not count the report hit".to_string());
    }
    // Error plane: garbage must come back as a structured error on the
    // same connection, not a panic or a dropped socket.
    let bad = client.request("this is not json")?;
    if bad.get("ok").and_then(|v| v.as_bool()) != Some(false) {
        return Err("malformed line was not answered with ok:false".to_string());
    }
    // A zero deadline must be rejected at admission with stage=timeout —
    // even though this workload's report is already cached.
    let timed = client.request(&format!(
        "{{\"op\":\"analyze\",\"workload\":\"{spec}\",\"deadline_ms\":0}}"
    ))?;
    if timed.get("stage").and_then(|v| v.as_str()) != Some("timeout") {
        return Err("deadline_ms=0 request did not answer stage=timeout".to_string());
    }
    // And the daemon keeps serving afterwards.
    let after = client.request(&line)?;
    if after.get("output").and_then(|v| v.as_str()) != Some(solo.text.as_str()) {
        return Err("post-error response differs from solo CLI output".to_string());
    }
    if shutdown {
        let _ = client.send_line("{\"op\":\"shutdown\"}");
    }
    Ok(format!(
        "smoke ok: {spec} cold {cold_ms:.1} ms, warm {warm_ms:.1} ms (digest hit), \
         outputs byte-identical to solo, error plane answers structured errors"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mean: f64 = (0..1000).map(|_| a.next_f64()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = SplitMix64::new(7);
        let zipf = Zipf::new(4, 1.0);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.draw(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[3], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let s = LatencyStats::from_ms((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p90, 90.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(LatencyStats::from_ms(vec![]).n, 0);
    }

    #[test]
    fn schedules_are_deterministic_and_monotone() {
        let config = LoadgenConfig {
            requests: 32,
            rate: 50.0,
            workloads: vec!["realbug:ZooKeeper".to_string(), "avrora".to_string()],
            ..LoadgenConfig::default()
        };
        let a = build_schedule(&config).unwrap();
        let b = build_schedule(&config).unwrap();
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.arrival_s, y.arrival_s);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(a.iter().any(|s| s.line.contains("\"edit\":")));
    }

    #[test]
    fn malformed_injection_is_deterministic_and_never_blank() {
        let config = LoadgenConfig {
            requests: 64,
            malformed_frac: 0.5,
            ..LoadgenConfig::default()
        };
        let a = build_schedule(&config).unwrap();
        let b = build_schedule(&config).unwrap();
        let injected: Vec<_> = a.iter().filter(|s| s.expect_err).collect();
        assert!(!injected.is_empty(), "frac 0.5 over 64 requests injects");
        assert!(injected.len() < 64, "not every request is malformed");
        // Injected lines are keyless (oracle skips them) and never empty
        // (the server skips blank lines, which would hang the client).
        assert!(injected.iter().all(|s| s.key.is_empty()));
        assert!(injected.iter().all(|s| !s.line.trim().is_empty()));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.line, y.line);
            assert_eq!(x.expect_err, y.expect_err);
        }
    }

    #[test]
    fn schedules_reject_unknown_workloads() {
        let config = LoadgenConfig {
            workloads: vec!["nonsense".to_string()],
            ..LoadgenConfig::default()
        };
        assert!(build_schedule(&config).is_err());
    }
}
