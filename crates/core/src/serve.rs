//! The resident analysis daemon behind `o2 serve <addr>`.
//!
//! A server process holds one [`SharedStore`] — the digest-keyed
//! artifact pool of PR 8 — plus two derived caches across *all*
//! requests, so every client gets warm-replay latency instead of
//! cold-run latency:
//!
//! 1. **artifact pool** ([`SharedStore`]): every analyze request checks
//!    out a private [`AnalysisDb`] seeded from the pool, runs the
//!    ordinary incremental pipeline, and publishes its artifacts back.
//!    A function body any earlier request has analyzed (same program,
//!    an edited version, or a different program sharing the body)
//!    replays instead of recomputing.
//! 2. **rendered-report cache**: keyed by whole-program digest. A
//!    repeat request for a digest-identical program skips the pipeline
//!    entirely and answers with the cached bytes (`digest_hit` in the
//!    response) — the same fast path the solo CLI has behind
//!    `--load-db`, shared across every client.
//! 3. **resolved-program cache**: registry workloads and inline sources
//!    are parsed/generated once per distinct request shape.
//!
//! # Protocol
//!
//! Line-delimited JSON over TCP: one request per line, one response
//! line per request, connections are keep-alive. Requests are *flat*
//! JSON objects (string / number / boolean values, no nesting); see
//! DESIGN §14 for the grammar. Operations:
//!
//! - `analyze` — `workload` (registry spec) or `source` (inline
//!   program; `frontend:"c"` selects the C frontend), optional `edit`
//!   (apply N deterministic single-function edits), `format`
//!   (`text|json|sarif`, default `text`), `deadline_ms` (per-request
//!   wall-clock budget; an exceeded deadline answers a structured
//!   `timeout` error and the worker returns to the pool).
//! - `diff-analyze` — `workload`+`edit` (old = base, new = edited) or
//!   `old_source`/`new_source`; answers with the digest diff counts and
//!   the new version's report. Also honors `deadline_ms`.
//! - `stats` — cumulative [`ServeStats`] + [`StoreStats`] counters.
//! - `ping`, `shutdown`.
//!
//! # Errors
//!
//! A request that fails inside the pipeline answers one line of the
//! shape `{"ok":false,"error":"...","stage":"<tag>"}` where the tag is
//! the [`O2Error`] stage (`parse`, `resolve`, `timeout`, …). Protocol
//! errors (unparseable line, unknown op, bad fields) answer without a
//! stage. Every analysis runs under a panic backstop: a bug that would
//! abort a solo run answers a structured `internal` error here and the
//! daemon keeps serving.
//!
//! # Invariants
//!
//! The `output` field of an `analyze` response is **byte-identical** to
//! the solo CLI's stdout for the same program and `--format` (with
//! `--quiet`): replay is byte-identical to recompute (the store's
//! invariant), and the report cache stores exactly the pipeline's
//! rendered bytes. Sharing changes how fast a request answers, never
//! what it answers.
//!
//! Reentrancy: the engine configuration is immutable, every request
//! analyzes under its own [`ProgramCtx`] (a fresh [`ProgramId`] from an
//! atomic counter — dense ids never leak across requests), and all
//! shared state (`SharedStore`, the two caches, the counters) is behind
//! mutexes held only for copies, never across an analysis.

use crate::incremental::IncrStats;
use crate::{AnalysisReport, O2};
use o2_db::{AnalysisDb, CachedReports, Digest, DigestHasher, FastMap, SharedStore, StoreStats};
use o2_ir::{
    digest_diff, digest_program, Budget, O2Error, Program, ProgramCtx, ProgramDigests, ProgramId,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one request line's byte length (overridable via
/// [`ServeOptions::max_line`]). An oversized line answers a structured
/// error and the connection survives.
pub const DEFAULT_MAX_LINE: usize = 4 << 20;

// ---------------------------------------------------------------------
// Flat JSON: the protocol's wire format.
// ---------------------------------------------------------------------

/// One value of a flat protocol object.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// A JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one *flat* JSON object (`{"k": "v", "n": 3, "b": true}`) into
/// a key → value map. Nested objects and arrays are rejected: the
/// protocol is deliberately one level deep so both sides can stay
/// dependency-free.
pub fn parse_flat_json(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = FlatParser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
        return p.finish(map);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        map.insert(key, value);
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {
                p.pos += 1;
                return p.finish(map);
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
        }
    }
}

struct FlatParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl FlatParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn finish(
        &mut self,
        map: BTreeMap<String, JsonValue>,
    ) -> Result<BTreeMap<String, JsonValue>, String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(map)
        } else {
            Err(format!("trailing bytes after object at byte {}", self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).ok_or("invalid surrogate pair")?);
                            } else {
                                out.push(char::from_u32(cp).ok_or("invalid \\u escape")?);
                            }
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not part of the flat protocol".to_string())
            }
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number")?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("invalid number '{text}'"))
            }
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// Output rendering of an analyze / diff-analyze request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// The human-readable pipeline summary (`--format text`).
    Text,
    /// The machine-readable pipeline report (`--format json`).
    Json,
    /// SARIF 2.1.0 (`--format sarif`).
    Sarif,
}

impl Format {
    fn parse(s: &str) -> Result<Format, String> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            "sarif" => Ok(Format::Sarif),
            other => Err(format!("unknown format {other:?} (text|json|sarif)")),
        }
    }
}

/// What an analyze request names: a registry workload or inline source,
/// plus a deterministic edit depth.
#[derive(Clone, Debug)]
enum Target {
    Workload { spec: String, edit: u32 },
    Source { src: String, c: bool, edit: u32 },
}

enum Request {
    Analyze {
        target: Target,
        format: Format,
        deadline_ms: Option<u64>,
    },
    Diff {
        old: Target,
        new: Target,
        format: Format,
        deadline_ms: Option<u64>,
    },
    Stats,
    Ping,
    Shutdown,
}

fn get_edit(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u32, String> {
    match map.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .filter(|&n| n <= 16)
            .map(|n| n as u32)
            .ok_or_else(|| format!("{key} must be an integer in 0..=16")),
    }
}

fn get_format(map: &BTreeMap<String, JsonValue>) -> Result<Format, String> {
    match map.get("format") {
        None => Ok(Format::Text),
        Some(v) => Format::parse(v.as_str().ok_or("format must be a string")?),
    }
}

fn get_deadline(map: &BTreeMap<String, JsonValue>) -> Result<Option<u64>, String> {
    match map.get("deadline_ms") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| "deadline_ms must be a non-negative integer".to_string()),
    }
}

/// The per-request [`Budget`]: a wall-clock deadline when the client
/// sent `deadline_ms`, unlimited otherwise.
fn budget_for(deadline_ms: Option<u64>) -> Budget {
    match deadline_ms {
        Some(ms) => Budget::with_deadline(Duration::from_millis(ms)),
        None => Budget::unlimited(),
    }
}

impl Request {
    fn from_map(map: &BTreeMap<String, JsonValue>) -> Result<Request, String> {
        let op = map
            .get("op")
            .and_then(|v| v.as_str())
            .ok_or("missing string field \"op\"")?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" => {
                let format = get_format(map)?;
                let deadline_ms = get_deadline(map)?;
                let edit = get_edit(map, "edit")?;
                let target = match (map.get("workload"), map.get("source")) {
                    (Some(w), None) => Target::Workload {
                        spec: w.as_str().ok_or("workload must be a string")?.to_string(),
                        edit,
                    },
                    (None, Some(s)) => Target::Source {
                        src: s.as_str().ok_or("source must be a string")?.to_string(),
                        c: matches!(map.get("frontend").and_then(|v| v.as_str()), Some("c")),
                        edit,
                    },
                    (Some(_), Some(_)) => {
                        return Err("give either \"workload\" or \"source\", not both".into())
                    }
                    (None, None) => {
                        return Err("analyze needs a \"workload\" or \"source\" field".into())
                    }
                };
                Ok(Request::Analyze {
                    target,
                    format,
                    deadline_ms,
                })
            }
            "diff-analyze" => {
                let format = get_format(map)?;
                let deadline_ms = get_deadline(map)?;
                let c = matches!(map.get("frontend").and_then(|v| v.as_str()), Some("c"));
                let (old, new) = match (
                    map.get("workload"),
                    map.get("old_source"),
                    map.get("new_source"),
                ) {
                    (Some(w), None, None) => {
                        let spec = w.as_str().ok_or("workload must be a string")?.to_string();
                        let edit = match get_edit(map, "edit")? {
                            0 => 1, // diff against the unedited base needs an edit
                            n => n,
                        };
                        (
                            Target::Workload {
                                spec: spec.clone(),
                                edit: 0,
                            },
                            Target::Workload { spec, edit },
                        )
                    }
                    (None, Some(o), Some(n)) => (
                        Target::Source {
                            src: o.as_str().ok_or("old_source must be a string")?.to_string(),
                            c,
                            edit: 0,
                        },
                        Target::Source {
                            src: n.as_str().ok_or("new_source must be a string")?.to_string(),
                            c,
                            edit: 0,
                        },
                    ),
                    _ => {
                        return Err("diff-analyze needs \"workload\" (+ optional \"edit\") \
                                    or \"old_source\" and \"new_source\""
                            .into())
                    }
                };
                Ok(Request::Diff {
                    old,
                    new,
                    format,
                    deadline_ms,
                })
            }
            other => Err(format!(
                "unknown op {other:?} (analyze|diff-analyze|stats|ping|shutdown)"
            )),
        }
    }
}

/// Builds the one-line error response for `msg` (protocol-level errors
/// with no pipeline stage).
pub fn error_response(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(msg))
}

/// Builds the one-line error response for a typed pipeline error,
/// tagging the stage it came from (`parse`, `resolve`, `timeout`, …).
pub fn staged_error_response(err: &O2Error) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"stage\":\"{}\"}}",
        json_escape(&err.to_string()),
        err.stage()
    )
}

// ---------------------------------------------------------------------
// Server state.
// ---------------------------------------------------------------------

/// Cumulative request accounting of one server process. Wall-time sums
/// are scheduling-dependent; everything else is a pure function of the
/// request stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Requests received (including malformed ones).
    pub requests: u64,
    /// Successful `analyze` responses.
    pub analyze_ok: u64,
    /// Successful `diff-analyze` responses.
    pub diff_ok: u64,
    /// Error responses (malformed, unknown op, resolution failures).
    pub errors: u64,
    /// Analyze requests answered wholesale from the rendered-report
    /// cache (whole-program digest hit).
    pub report_hits: u64,
    /// Artifacts replayed from the shared store across all requests.
    pub artifact_replays: u64,
    /// Artifacts recomputed (rescanned / re-walked / re-checked).
    pub artifact_recomputes: u64,
    /// Analyze/diff requests that replayed nothing (first sight of
    /// every artifact).
    pub cold_requests: u64,
    /// Analyze/diff requests served at least partly from cache (report
    /// hit or ≥1 artifact replay).
    pub warm_requests: u64,
    /// Total wall milliseconds spent answering cold requests.
    pub cold_ms_total: f64,
    /// Total wall milliseconds spent answering warm requests.
    pub warm_ms_total: f64,
    /// Requests aborted by a per-request `deadline_ms` budget.
    pub timeouts: u64,
    /// Requests answered by the panic backstop (also counted in
    /// `errors`).
    pub panics: u64,
    /// Resolved-program cache hits (request shape seen before).
    pub program_cache_hits: u64,
    /// Resolved-program cache LRU evictions.
    pub program_cache_evictions: u64,
    /// Rendered-report cache hits (lookup found the digest).
    pub report_cache_hits: u64,
    /// Rendered-report cache LRU evictions.
    pub report_cache_evictions: u64,
}

impl ServeStats {
    /// Mean cold-request latency in milliseconds (0 when none).
    pub fn cold_ms_mean(&self) -> f64 {
        if self.cold_requests == 0 {
            0.0
        } else {
            self.cold_ms_total / self.cold_requests as f64
        }
    }

    /// Mean warm-request latency in milliseconds (0 when none).
    pub fn warm_ms_mean(&self) -> f64 {
        if self.warm_requests == 0 {
            0.0
        } else {
            self.warm_ms_total / self.warm_requests as f64
        }
    }

    /// Fraction of artifact lookups served by replay, in `[0, 1]`.
    pub fn replay_rate(&self) -> f64 {
        let total = self.artifact_replays + self.artifact_recomputes;
        if total == 0 {
            0.0
        } else {
            self.artifact_replays as f64 / total as f64
        }
    }
}

struct ResolvedProgram {
    name: String,
    program: Program,
    digests: ProgramDigests,
}

/// A bounded map with least-recently-used eviction and hit/evict
/// accounting. A lookup bumps the entry's recency stamp; inserting a
/// new key at capacity evicts the stalest entry instead of clearing the
/// whole cache, so a resident daemon keeps its hot set under an
/// adversarial request stream. Eviction scans all entries for the
/// minimum stamp — O(cap), and the caps are small (hundreds).
struct LruCache<K, V> {
    map: FastMap<K, (V, u64)>,
    tick: u64,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    fn new(cap: usize) -> LruCache<K, V> {
        LruCache {
            map: FastMap::default(),
            tick: 0,
            cap: cap.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((v, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone());
            if let Some(stalest) = stalest {
                self.map.remove(&stalest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// All state one server process shares across requests: the engine
/// configuration, the artifact pool, the program / report caches, and
/// the counters. See the module docs for the reentrancy contract.
pub struct ServeState {
    engine: O2,
    store: SharedStore,
    /// LRU-bounded caches (cap 512 each): resolved request shapes and
    /// rendered whole-program reports.
    programs: Mutex<LruCache<String, Arc<ResolvedProgram>>>,
    reports: Mutex<LruCache<Digest, Arc<CachedReports>>>,
    stats: Mutex<ServeStats>,
    next_id: AtomicU32,
    shutdown: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
}

impl ServeState {
    /// Creates server state for `engine` with an empty artifact pool.
    pub fn new(engine: O2) -> ServeState {
        let store = SharedStore::new(engine.config_sig());
        ServeState {
            engine,
            store,
            programs: Mutex::new(LruCache::new(512)),
            reports: Mutex::new(LruCache::new(512)),
            stats: Mutex::new(ServeStats::default()),
            // ProgramId(0) is reserved for solo runs; request ids start
            // at 1 so a request namespace never masquerades as SOLO.
            next_id: AtomicU32::new(1),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
        }
    }

    /// The engine this server analyzes with.
    pub fn engine(&self) -> &O2 {
        &self.engine
    }

    /// Seeds the artifact pool from a persisted database image (the
    /// `--load-db` warm-restart path). Returns how many artifacts were
    /// seeded; rejects an image recorded under a different
    /// configuration.
    pub fn preseed(&self, image: &AnalysisDb) -> Result<usize, String> {
        self.store.preseed(image)
    }

    /// A point-in-time image of the artifact pool (the `--save-db`
    /// path).
    pub fn snapshot_db(&self) -> AnalysisDb {
        self.store.snapshot()
    }

    /// Point-in-time copy of the request counters, with the cache
    /// hit/evict counters folded in from the two LRU caches.
    pub fn stats(&self) -> ServeStats {
        let mut s = *self.stats.lock().expect("serve stats poisoned");
        {
            let p = self.programs.lock().expect("program cache poisoned");
            s.program_cache_hits = p.hits;
            s.program_cache_evictions = p.evictions;
        }
        {
            let r = self.reports.lock().expect("report cache poisoned");
            s.report_cache_hits = r.hits;
            s.report_cache_evictions = r.evictions;
        }
        s
    }

    /// Point-in-time copy of the artifact pool's accounting.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Flags the server to stop accepting connections and wakes the
    /// acceptor. In-flight requests finish; idle connections close at
    /// their next read-timeout tick.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self.addr.lock().expect("serve addr poisoned");
        if let Some(addr) = addr {
            // Wake the blocking accept() so the acceptor sees the flag.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn count_error(&self) {
        let mut s = self.stats.lock().expect("serve stats poisoned");
        s.requests += 1;
        s.errors += 1;
    }

    fn count_staged_error(&self, err: &O2Error) {
        let mut s = self.stats.lock().expect("serve stats poisoned");
        s.requests += 1;
        s.errors += 1;
        match err {
            O2Error::Timeout(_) | O2Error::Budget(_) => s.timeouts += 1,
            O2Error::Internal(_) => s.panics += 1,
            _ => {}
        }
    }

    fn count_misc(&self) {
        self.stats.lock().expect("serve stats poisoned").requests += 1;
    }

    fn fresh_program_id(&self) -> ProgramId {
        ProgramId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    // -- program resolution -------------------------------------------

    fn resolve_target(&self, target: &Target) -> Result<Arc<ResolvedProgram>, O2Error> {
        let key = match target {
            Target::Workload { spec, edit } => format!("w\u{1}{spec}\u{1}{edit}"),
            Target::Source { src, c, edit } => {
                let mut h = DigestHasher::with_tag("o2.serve.src.v1");
                h.write_bytes(src.as_bytes());
                h.write_bool(*c);
                h.write_u32(*edit);
                let d = h.finish();
                format!("s\u{1}{:016x}{:016x}", d.0, d.1)
            }
        };
        if let Some(p) = self
            .programs
            .lock()
            .expect("program cache poisoned")
            .get(&key)
        {
            return Ok(p);
        }
        // Resolve outside the lock: generation / parsing can be slow and
        // two concurrent resolutions of the same key are merely wasted
        // work, never wrong.
        let (base_name, mut program, edit) = match target {
            Target::Workload { spec, edit } => {
                let w = o2_workloads::workload_by_name(spec)
                    .ok_or_else(|| O2Error::Resolve(format!("unknown workload {spec:?}")))?;
                (w.name, w.program, *edit)
            }
            Target::Source { src, c, edit } => {
                let program = if *c {
                    o2_ir::cfront::parse_c(src).map_err(O2Error::from)?
                } else {
                    o2_ir::parser::parse(src).map_err(O2Error::from)?
                };
                if let Some(issue) = o2_ir::validate::validate(&program).first() {
                    return Err(O2Error::Resolve(format!("invalid program: {issue}")));
                }
                ("inline".to_string(), program, *edit)
            }
        };
        if edit > 0 && !has_memory_access(&program) {
            return Err(O2Error::Resolve(
                "program has no memory access to edit".to_string(),
            ));
        }
        for _ in 0..edit {
            program = o2_workloads::single_function_edit(&program).0;
        }
        let name = if edit > 0 {
            format!("{base_name}#edit{edit}")
        } else {
            base_name
        };
        let digests = digest_program(&program);
        let resolved = Arc::new(ResolvedProgram {
            name,
            program,
            digests,
        });
        self.programs
            .lock()
            .expect("program cache poisoned")
            .insert(key, resolved.clone());
        Ok(resolved)
    }

    // -- request handling ---------------------------------------------

    /// Handles one request line; returns the response line (without the
    /// trailing newline) and whether the server should shut down after
    /// sending it.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let t0 = Instant::now();
        let map = match parse_flat_json(line) {
            Ok(m) => m,
            Err(e) => {
                self.count_error();
                return (error_response(&format!("bad request: {e}")), false);
            }
        };
        let req = match Request::from_map(&map) {
            Ok(r) => r,
            Err(e) => {
                self.count_error();
                return (error_response(&e), false);
            }
        };
        match req {
            Request::Ping => {
                self.count_misc();
                ("{\"ok\":true,\"op\":\"ping\"}".to_string(), false)
            }
            Request::Stats => {
                self.count_misc();
                (self.stats_response(), false)
            }
            Request::Shutdown => {
                self.count_misc();
                (
                    "{\"ok\":true,\"op\":\"shutdown\",\"bye\":true}".to_string(),
                    true,
                )
            }
            Request::Analyze {
                target,
                format,
                deadline_ms,
            } => match self.analyze(&target, format, deadline_ms, t0) {
                Ok(resp) => (resp, false),
                Err(e) => {
                    self.count_staged_error(&e);
                    (staged_error_response(&e), false)
                }
            },
            Request::Diff {
                old,
                new,
                format,
                deadline_ms,
            } => match self.diff(&old, &new, format, deadline_ms, t0) {
                Ok(resp) => (resp, false),
                Err(e) => {
                    self.count_staged_error(&e);
                    (staged_error_response(&e), false)
                }
            },
        }
    }

    /// Runs the budgeted incremental pipeline under a panic backstop.
    /// No `ServeState` lock is held across this call, so a caught panic
    /// can never poison shared state; it surfaces as a structured
    /// `internal` error and the worker returns to the pool.
    fn run_pipeline_guarded(
        &self,
        ctx: &ProgramCtx<'_>,
        db: &mut AnalysisDb,
        digests: &ProgramDigests,
        budget: &Budget,
    ) -> Result<(AnalysisReport, IncrStats), O2Error> {
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.engine
                .try_analyze_with_db_prepared_ctx(ctx, db, digests, budget)
        })) {
            Ok(result) => result,
            Err(payload) => Err(O2Error::from_panic(payload)),
        }
    }

    /// Runs the incremental pipeline for `resolved` against a store
    /// checkout and caches the rendered reports. Returns the reports and
    /// the run's replay counters; a budget trip or caught panic aborts
    /// the request without publishing and without caching.
    fn analyze_uncached(
        &self,
        resolved: &ResolvedProgram,
        budget: &Budget,
    ) -> Result<(Arc<CachedReports>, IncrStats), O2Error> {
        let ctx = ProgramCtx::new(self.fresh_program_id(), &resolved.name, &resolved.program);
        let mut db = self.store.checkout();
        let (report, stats) =
            self.run_pipeline_guarded(&ctx, &mut db, &resolved.digests, budget)?;
        self.store.publish(&db);
        let pipeline = report.run_pipeline(&resolved.program);
        let cached = Arc::new(CachedReports {
            n_races: pipeline.races.len() as u64,
            text: pipeline.render(&resolved.program),
            json: pipeline.to_json(&resolved.program),
            sarif: pipeline.to_sarif(&resolved.program),
        });
        self.reports
            .lock()
            .expect("report cache poisoned")
            .insert(resolved.digests.program, cached.clone());
        Ok((cached, stats))
    }

    fn account_analysis(
        &self,
        kind: AnalysisKind,
        digest_hit: bool,
        stats: &IncrStats,
        wall_ms: f64,
    ) {
        let replays = stats.total_replays() as u64;
        let recomputes =
            (stats.mis_rescanned + stats.origins_walked + stats.candidates_rechecked) as u64;
        let mut s = self.stats.lock().expect("serve stats poisoned");
        s.requests += 1;
        match kind {
            AnalysisKind::Analyze => s.analyze_ok += 1,
            AnalysisKind::Diff => s.diff_ok += 1,
        }
        if digest_hit {
            s.report_hits += 1;
        }
        s.artifact_replays += replays;
        s.artifact_recomputes += recomputes;
        if digest_hit || replays > 0 {
            s.warm_requests += 1;
            s.warm_ms_total += wall_ms;
        } else {
            s.cold_requests += 1;
            s.cold_ms_total += wall_ms;
        }
    }

    fn analyze(
        &self,
        target: &Target,
        format: Format,
        deadline_ms: Option<u64>,
        t0: Instant,
    ) -> Result<String, O2Error> {
        let budget = budget_for(deadline_ms);
        budget.check("request admission")?;
        let resolved = self.resolve_target(target)?;
        let cached = self
            .reports
            .lock()
            .expect("report cache poisoned")
            .get(&resolved.digests.program);
        let (reports, digest_hit, stats) = match cached {
            Some(r) => (r, true, IncrStats::default()),
            None => {
                let (r, stats) = self.analyze_uncached(&resolved, &budget)?;
                (r, false, stats)
            }
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.account_analysis(AnalysisKind::Analyze, digest_hit, &stats, wall_ms);
        let mut out = String::with_capacity(256);
        out.push_str("{\"ok\":true,\"op\":\"analyze\",\"program\":\"");
        out.push_str(&json_escape(&resolved.name));
        out.push('"');
        push_counter_fields(&mut out, reports.n_races, digest_hit, &stats, wall_ms);
        push_output(&mut out, format, &reports);
        Ok(out)
    }

    fn diff(
        &self,
        old_t: &Target,
        new_t: &Target,
        format: Format,
        deadline_ms: Option<u64>,
        t0: Instant,
    ) -> Result<String, O2Error> {
        let budget = budget_for(deadline_ms);
        budget.check("request admission")?;
        let old = self.resolve_target(old_t)?;
        let new = self.resolve_target(new_t)?;
        // One checkout, two runs: the new version runs warm from the old
        // version's artifacts (plus whatever the pool already held).
        // Both runs publish, so later requests replay either version.
        let ctx_old = ProgramCtx::new(self.fresh_program_id(), &old.name, &old.program);
        let mut db = self.store.checkout();
        let (_old_report, _old_stats) =
            self.run_pipeline_guarded(&ctx_old, &mut db, &old.digests, &budget)?;
        self.store.publish(&db);
        let ctx_new = ProgramCtx::new(self.fresh_program_id(), &new.name, &new.program);
        let (new_report, stats) =
            self.run_pipeline_guarded(&ctx_new, &mut db, &new.digests, &budget)?;
        self.store.publish(&db);
        let diff = digest_diff(&old.digests, &new.digests);
        let pipeline = new_report.run_pipeline(&new.program);
        let reports = Arc::new(CachedReports {
            n_races: pipeline.races.len() as u64,
            text: pipeline.render(&new.program),
            json: pipeline.to_json(&new.program),
            sarif: pipeline.to_sarif(&new.program),
        });
        self.reports
            .lock()
            .expect("report cache poisoned")
            .insert(new.digests.program, reports.clone());
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.account_analysis(AnalysisKind::Diff, false, &stats, wall_ms);
        let mut out = String::with_capacity(256);
        out.push_str("{\"ok\":true,\"op\":\"diff-analyze\",\"program\":\"");
        out.push_str(&json_escape(&new.name));
        let _ = {
            use std::fmt::Write as _;
            write!(
                out,
                "\",\"changed\":{},\"added\":{},\"removed\":{}",
                diff.changed.len(),
                diff.added.len(),
                diff.removed.len()
            )
        };
        push_counter_fields(&mut out, reports.n_races, false, &stats, wall_ms);
        push_output(&mut out, format, &reports);
        Ok(out)
    }

    fn stats_response(&self) -> String {
        use std::fmt::Write as _;
        let s = self.stats();
        let st = self.store_stats();
        let (osa, shb, verdicts) = self.store.pooled();
        let cached = self.reports.lock().expect("report cache poisoned").len();
        let cached_programs = self.programs.lock().expect("program cache poisoned").len();
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"ok\":true,\"op\":\"stats\",\"requests\":{},\"analyze_ok\":{},\"diff_ok\":{},\
             \"errors\":{},\"report_hits\":{},\"artifact_replays\":{},\"artifact_recomputes\":{},\
             \"replay_rate\":{:.4},\"cold_requests\":{},\"warm_requests\":{},\
             \"cold_ms_mean\":{:.3},\"warm_ms_mean\":{:.3}",
            s.requests,
            s.analyze_ok,
            s.diff_ok,
            s.errors,
            s.report_hits,
            s.artifact_replays,
            s.artifact_recomputes,
            s.replay_rate(),
            s.cold_requests,
            s.warm_requests,
            s.cold_ms_mean(),
            s.warm_ms_mean(),
        );
        let _ = write!(
            out,
            ",\"timeouts\":{},\"panics\":{},\"program_cache_hits\":{},\
             \"program_cache_evictions\":{},\"report_cache_hits\":{},\
             \"report_cache_evictions\":{},\"cached_programs\":{cached_programs}",
            s.timeouts,
            s.panics,
            s.program_cache_hits,
            s.program_cache_evictions,
            s.report_cache_hits,
            s.report_cache_evictions,
        );
        let _ = write!(
            out,
            ",\"store_checkouts\":{},\"store_publishes\":{},\"store_seeded\":{},\
             \"store_accepted\":{},\"store_offered\":{},\"store_collisions\":{},\
             \"pooled_osa\":{osa},\"pooled_shb\":{shb},\"pooled_verdicts\":{verdicts},\
             \"cached_reports\":{cached}}}",
            st.checkouts,
            st.publishes,
            st.artifacts_seeded,
            st.artifacts_accepted,
            st.artifacts_offered,
            st.digest_collisions(),
        );
        out
    }
}

#[derive(Clone, Copy)]
enum AnalysisKind {
    Analyze,
    Diff,
}

pub(crate) fn has_memory_access(p: &Program) -> bool {
    p.methods.iter().any(|m| {
        m.body
            .iter()
            .any(|i| i.stmt.field_access().is_some() || i.stmt.static_access().is_some())
    })
}

/// Writes the counter fields shared by analyze and diff responses. The
/// caller has already closed the `"program"` string.
fn push_counter_fields(
    out: &mut String,
    races: u64,
    digest_hit: bool,
    stats: &IncrStats,
    wall_ms: f64,
) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        ",\"races\":{races},\"digest_hit\":{digest_hit},\"replays\":{},\"recomputes\":{},\
         \"wall_ms\":{wall_ms:.3}",
        stats.total_replays(),
        stats.mis_rescanned + stats.origins_walked + stats.candidates_rechecked,
    );
}

fn push_output(out: &mut String, format: Format, reports: &CachedReports) {
    out.push_str(",\"output\":\"");
    let payload = match format {
        Format::Text => &reports.text,
        Format::Json => &reports.json,
        Format::Sarif => &reports.sarif,
    };
    out.push_str(&json_escape(payload));
    out.push_str("\"}");
}

// ---------------------------------------------------------------------
// The TCP server.
// ---------------------------------------------------------------------

/// Knobs of one server process.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Connection-handling worker threads (0 = available parallelism,
    /// floor 8). Connections use blocking reads, so one worker serves
    /// one connection at a time: concurrency beyond the worker count
    /// queues at the acceptor. Idle workers cost almost nothing (they
    /// block in `recv`/`read`), hence the floor — a single-core host
    /// still serves several clients concurrently.
    pub workers: usize,
    /// Maximum accepted request-line length in bytes.
    pub max_line: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            max_line: DEFAULT_MAX_LINE,
        }
    }
}

/// Runs the accept loop on `listener` until shutdown is requested,
/// dispatching connections to a scoped worker pool. Blocks the calling
/// thread; returns after the last worker exits.
pub fn run(listener: TcpListener, state: &ServeState, opts: &ServeOptions) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    *state.addr.lock().expect("serve addr poisoned") = Some(addr);
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(8)
    } else {
        opts.workers
    };
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            scope.spawn(move || loop {
                let next = rx.lock().expect("serve queue poisoned").recv();
                match next {
                    Ok(stream) => handle_conn(state, stream, opts),
                    Err(_) => break, // acceptor gone, queue drained
                }
            });
        }
        for stream in listener.incoming() {
            if state.is_shutting_down() {
                break;
            }
            if let Ok(s) = stream {
                if state.is_shutting_down() {
                    break;
                }
                let _ = tx.send(s);
            }
        }
        drop(tx);
    });
    Ok(())
}

/// Serves one keep-alive connection: reads request lines, answers each,
/// survives malformed and oversized input, and closes on EOF or
/// shutdown.
fn handle_conn(state: &ServeState, stream: TcpStream, opts: &ServeOptions) {
    let _ = stream.set_nodelay(true);
    // Idle reads tick every 200 ms so a shutdown can close the
    // connection without waiting for the client.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16384];
    let mut discarding = false;
    loop {
        // Answer every complete line currently buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.is_empty() {
                continue;
            }
            if line.len() > opts.max_line {
                state.count_error();
                let msg = format!("request line exceeds {} bytes", opts.max_line);
                if write_line(&stream, &error_response(&msg)).is_err() {
                    return;
                }
                continue;
            }
            let (resp, shutdown) = match std::str::from_utf8(&line) {
                Ok(text) => state.handle_line(text),
                Err(_) => {
                    state.count_error();
                    (error_response("request is not valid UTF-8"), false)
                }
            };
            if write_line(&stream, &resp).is_err() {
                return;
            }
            if shutdown {
                state.request_shutdown();
                return;
            }
        }
        // No newline buffered: enforce the line cap before reading more.
        if !discarding && buf.len() > opts.max_line {
            state.count_error();
            let msg = format!(
                "request line exceeds {} bytes; close and resend",
                opts.max_line
            );
            if write_line(&stream, &error_response(&msg)).is_err() {
                return;
            }
            buf.clear();
            discarding = true;
        }
        match (&stream).read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if discarding {
                    // Skip the rest of the oversized line; resume at the
                    // byte after its newline.
                    if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                        discarding = false;
                        buf.extend_from_slice(&chunk[pos + 1..n]);
                    }
                } else {
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.is_shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// A server running on a background thread (the in-process harness used
/// by tests and the PR 9 bench).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (stats, store, preseed).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests shutdown and joins the server thread.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.state.request_shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// Binds `addr` and runs the server on a background thread.
pub fn spawn(
    addr: impl ToSocketAddrs,
    state: Arc<ServeState>,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let st = state.clone();
    let thread = std::thread::spawn(move || run(listener, &st, &opts));
    Ok(ServerHandle {
        addr: local,
        state,
        thread,
    })
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

/// A blocking protocol client over one keep-alive connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request line and blocks for the one response line.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 16384];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop();
                return String::from_utf8(line)
                    .map_err(|_| std::io::Error::other("response is not UTF-8"));
            }
            let n = (&self.stream).read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sends a request and parses the flat-JSON response.
    pub fn request(&mut self, line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
        let resp = self.send_line(line).map_err(|e| e.to_string())?;
        parse_flat_json(&resp)
    }
}

/// Renders the three solo report forms for `program` under `engine` —
/// the byte-identity oracle used by tests, the loadgen smoke, and the
/// PR 9 bench. This is exactly what the solo CLI prints per `--format`
/// (with `--quiet`).
pub fn solo_reports(engine: &O2, program: &Program) -> CachedReports {
    let report = engine.analyze(program);
    let pipeline = report.run_pipeline(program);
    CachedReports {
        n_races: pipeline.races.len() as u64,
        text: pipeline.render(program),
        json: pipeline.to_json(program),
        sarif: pipeline.to_sarif(program),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_roundtrips_escapes() {
        let escaped = json_escape("a\"b\\c\nd\te\u{1}f");
        let line = format!("{{\"k\":\"{escaped}\",\"n\":3,\"b\":true,\"z\":null}}");
        let map = parse_flat_json(&line).unwrap();
        assert_eq!(map["k"].as_str(), Some("a\"b\\c\nd\te\u{1}f"));
        assert_eq!(map["n"].as_u64(), Some(3));
        assert_eq!(map["b"].as_bool(), Some(true));
        assert_eq!(map["z"], JsonValue::Null);
    }

    #[test]
    fn flat_json_rejects_nesting_and_garbage() {
        assert!(parse_flat_json("{\"a\":{}}").is_err());
        assert!(parse_flat_json("{\"a\":[1]}").is_err());
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{\"a\":1} trailing").is_err());
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let map = parse_flat_json("{\"k\":\"\\ud83d\\ude00\"}").unwrap();
        assert_eq!(map["k"].as_str(), Some("😀"));
        assert!(parse_flat_json("{\"k\":\"\\ud83d\"}").is_err());
    }

    #[test]
    fn unknown_ops_and_missing_fields_are_errors() {
        let state = ServeState::new(O2::default());
        let (resp, _) = state.handle_line("{\"op\":\"frobnicate\"}");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("unknown op"), "{resp}");
        let (resp, _) = state.handle_line("{\"op\":\"analyze\"}");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        let s = state.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 2);
    }

    #[test]
    fn analyze_workload_hits_report_cache_on_repeat() {
        let state = ServeState::new(O2::default());
        let req = "{\"op\":\"analyze\",\"workload\":\"realbug:ZooKeeper\",\"format\":\"json\"}";
        let (cold, _) = state.handle_line(req);
        let cold_map = parse_flat_json(&cold).unwrap();
        assert_eq!(cold_map["ok"].as_bool(), Some(true), "{cold}");
        assert_eq!(cold_map["digest_hit"].as_bool(), Some(false));
        let (warm, _) = state.handle_line(req);
        let warm_map = parse_flat_json(&warm).unwrap();
        assert_eq!(warm_map["digest_hit"].as_bool(), Some(true), "{warm}");
        assert_eq!(
            cold_map["output"].as_str(),
            warm_map["output"].as_str(),
            "cached bytes must match the cold rendering"
        );
        // And both match the solo oracle byte-for-byte.
        let w = o2_workloads::workload_by_name("realbug:ZooKeeper").unwrap();
        let solo = solo_reports(state.engine(), &w.program);
        assert_eq!(cold_map["output"].as_str(), Some(solo.json.as_str()));
        let s = state.stats();
        assert_eq!(s.report_hits, 1);
        assert_eq!(s.cold_requests, 1);
        assert_eq!(s.warm_requests, 1);
    }

    #[test]
    fn diff_analyze_reports_the_edit() {
        let state = ServeState::new(O2::default());
        let (resp, _) =
            state.handle_line("{\"op\":\"diff-analyze\",\"workload\":\"realbug:ZooKeeper\"}");
        let map = parse_flat_json(&resp).unwrap();
        assert_eq!(map["ok"].as_bool(), Some(true), "{resp}");
        assert_eq!(map["changed"].as_u64(), Some(1), "{resp}");
        assert!(map["replays"].as_u64().unwrap() > 0, "{resp}");
        // The edited program's output matches a solo run of the edited
        // program.
        let w = o2_workloads::workload_by_name("realbug:ZooKeeper").unwrap();
        let (edited, _) = o2_workloads::single_function_edit(&w.program);
        let solo = solo_reports(state.engine(), &edited);
        assert_eq!(map["output"].as_str(), Some(solo.text.as_str()));
    }
}
