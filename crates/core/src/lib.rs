//! # o2 — static race detection with origins
//!
//! The facade crate of the O2 reproduction (*"When Threads Meet Events:
//! Efficient and Precise Static Race Detection with Origins"*, PLDI 2021).
//! It wires the full pipeline:
//!
//! 1. **OPA** — origin-sensitive pointer analysis ([`o2_pta`]),
//! 2. **OSA** — origin-sharing analysis ([`o2_analysis`]),
//! 3. **SHB** — static happens-before graph construction ([`o2_shb`]),
//! 4. **race detection** with the §4.1 optimizations ([`o2_detect`]).
//!
//! ```
//! use o2::prelude::*;
//!
//! let program = o2_ir::parser::parse(r#"
//!     class S { field data; }
//!     class W impl Runnable {
//!         field s;
//!         method <init>(s) { this.s = s; }
//!         method run() { s = this.s; s.data = s; }
//!     }
//!     class Main {
//!         static method main() {
//!             s = new S();
//!             w = new W(s);
//!             w.start();
//!             x = s.data;
//!         }
//!     }
//! "#).unwrap();
//! let report = O2Builder::new().build().analyze(&program);
//! assert_eq!(report.races.races.len(), 1);
//! println!("{}", report.summary());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod incremental;
pub mod loadgen;
pub mod serve;

pub use batch::{
    parse_manifest, run_batch, run_batch_with_store, BatchEntry, BatchReport, ProgramOutcome,
};
pub use incremental::{DiffAnalysis, IncrStats};
pub use loadgen::{run_loadgen, LatencyStats, LoadgenConfig, LoadgenReport};
pub use serve::{Client, ServeOptions, ServerHandle};

use o2_analysis::{run_osa_bounded, OsaResult};
use o2_detect::{DetectConfig, RaceReport};
use o2_ir::program::Program;
use o2_ir::{Budget, O2Error, ProgramCtx, ProgramId};
use o2_pta::{Policy, PtaConfig, PtaResult};
use o2_shb::{build_shb, ShbConfig, ShbGraph};
use std::time::{Duration, Instant};

/// Re-exports of the most commonly used items across the workspace.
pub mod prelude {
    pub use crate::{
        peak_rss_bytes, AnalysisReport, DiffAnalysis, IncrStats, MemoryFootprint, O2Builder,
        Timings, O2,
    };
    pub use o2_analysis::{MemKey, OsaResult};
    pub use o2_db::AnalysisDb;
    pub use o2_detect::{
        DeadlockReport, DetectConfig, OversyncReport, PruneStats, Race, RaceReport,
    };
    pub use o2_ir::{Budget, EntryPointConfig, O2Error, OriginKind, Program};
    pub use o2_passes::{PipelineReport, Tier, TriagedRace};
    pub use o2_pta::{Policy, PtaConfig, PtaResult};
    pub use o2_shb::{ShbConfig, ShbGraph};
}

/// Per-stage wall-clock timings of one end-to-end run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timings {
    /// Pointer analysis.
    pub pta: Duration,
    /// Origin-sharing analysis.
    pub osa: Duration,
    /// SHB construction.
    pub shb: Duration,
    /// Race detection.
    pub detect: Duration,
    /// End-to-end total.
    pub total: Duration,
}

/// The complete result of one end-to-end analysis.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The pointer-analysis result (points-to sets, call graph, origins).
    pub pta: PtaResult,
    /// The origin-sharing result.
    pub osa: OsaResult,
    /// The SHB graph.
    pub shb: ShbGraph,
    /// The race report.
    pub races: RaceReport,
    /// Per-stage timings.
    pub timings: Timings,
}

impl AnalysisReport {
    /// `true` if any stage hit its budget before completion.
    pub fn timed_out(&self) -> bool {
        self.pta.timed_out
            || self.osa.truncated
            || self.races.timed_out
            || self.shb.traces.iter().any(|t| t.truncated)
    }

    /// Number of origins discovered (`#O` of Table 5).
    pub fn num_origins(&self) -> usize {
        self.pta.num_origins()
    }

    /// Number of reported races.
    pub fn num_races(&self) -> usize {
        self.races.races.len()
    }

    /// The program namespace this report's dense ids belong to
    /// ([`ProgramId::SOLO`] unless the report came from a batch run).
    pub fn program_id(&self) -> ProgramId {
        self.pta.program_id
    }

    /// Runs the deadlock analysis (§3's "beyond race detection" client)
    /// over this report's SHB graph.
    pub fn detect_deadlocks(&self, program: &Program) -> o2_detect::DeadlockReport {
        o2_detect::detect_deadlocks(program, &self.shb)
    }

    /// Runs the over-synchronization analysis over this report's OSA and
    /// SHB results.
    pub fn find_oversync(&self, program: &Program) -> o2_detect::OversyncReport {
        o2_detect::find_oversync(program, &self.osa, &self.shb)
    }

    /// Runs the post-detection precision pipeline (suppression, ownership
    /// pruning, guarded-by inference, RacerD agreement, deadlock and
    /// over-sync checks) over this report and returns the triaged result.
    pub fn run_pipeline(&self, program: &Program) -> o2_passes::PipelineReport {
        // Rebuild a context in this report's own namespace so the
        // pipeline's ProgramCtx agreement asserts hold for batch reports.
        let ctx = ProgramCtx::new(self.program_id(), "", program);
        o2_passes::run_pipeline(&ctx, &self.pta, &self.osa, &self.shb, &self.races)
    }

    /// Per-structure heap estimates for this run's long-lived state.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let (shb_traces, shb_csr, shb_locks, shb_access_index) = self.shb.approx_bytes();
        MemoryFootprint {
            shb_traces,
            shb_csr,
            shb_locks,
            shb_access_index,
            osa: self.osa.approx_bytes(),
        }
    }

    /// A one-paragraph textual summary (policy, origins, sharing, races).
    pub fn summary(&self) -> String {
        format!(
            "policy={} origins={} mis={} pointers={} objects={} edges={} \
             shared_accesses={} shared_objects={} races={} \
             (pta {:?}, osa {:?}, shb {:?}, detect {:?})",
            self.pta.policy,
            self.num_origins(),
            self.pta.stats.num_mis,
            self.pta.stats.num_pointers,
            self.pta.stats.num_objects,
            self.pta.stats.num_edges,
            self.osa.num_shared_accesses(),
            self.osa.num_shared_objects(),
            self.num_races(),
            self.timings.pta,
            self.timings.osa,
            self.timings.shb,
            self.timings.detect,
        )
    }
}

/// Approximate heap bytes held by each long-lived analysis structure,
/// gathered from the per-crate `approx_bytes` estimators. These are
/// capacity-based estimates (what the structures asked the allocator
/// for), not allocator-measured truth — compare them against
/// [`peak_rss_bytes`] for the whole-process ceiling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// SHB per-origin traces (nodes + per-node metadata).
    pub shb_traces: usize,
    /// The frozen CSR adjacency (entry + join edge arrays).
    pub shb_csr: usize,
    /// Interned locksets: canonical element slices, bitset mirrors, and
    /// the intern index.
    pub shb_locks: usize,
    /// The per-location access index driving candidate collection.
    pub shb_access_index: usize,
    /// OSA sharing entries, origin sets, and the location interner.
    pub osa: usize,
}

impl MemoryFootprint {
    /// Sum over all tracked structures.
    pub fn total(&self) -> usize {
        self.shb_traces + self.shb_csr + self.shb_locks + self.shb_access_index + self.osa
    }
}

/// Peak resident-set size of the current process in bytes (`VmHWM` from
/// `/proc/self/status`). Returns `None` on platforms without procfs (or
/// when the field is missing/unparsable), so callers can distinguish
/// "unavailable" from a genuinely small peak.
pub fn peak_rss_bytes() -> Option<usize> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: usize = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Builder for an [`O2`] analyzer (C-BUILDER).
///
/// Defaults to the paper's configuration: 1-origin OPA, the event
/// dispatcher lock, and all three detection optimizations.
#[derive(Clone, Debug, Default)]
pub struct O2Builder {
    pta: PtaConfig,
    shb: ShbConfig,
    detect: DetectConfig,
}

impl O2Builder {
    /// Creates a builder with the paper's default configuration.
    pub fn new() -> Self {
        O2Builder::default()
    }

    /// Sets the pointer-analysis context policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.pta.policy = policy;
        self
    }

    /// Sets a wall-clock budget for the pointer analysis.
    pub fn pta_timeout(mut self, timeout: Duration) -> Self {
        self.pta.timeout = Some(timeout);
        self
    }

    /// Sets a wall-clock budget for race detection.
    pub fn detect_timeout(mut self, timeout: Duration) -> Self {
        self.detect.timeout = Some(timeout);
        self
    }

    /// Replaces the pointer-analysis configuration.
    pub fn pta_config(mut self, cfg: PtaConfig) -> Self {
        self.pta = cfg;
        self
    }

    /// Replaces the SHB configuration.
    pub fn shb_config(mut self, cfg: ShbConfig) -> Self {
        self.shb = cfg;
        self
    }

    /// Replaces the detection configuration (e.g. [`DetectConfig::naive`]).
    pub fn detect_config(mut self, cfg: DetectConfig) -> Self {
        self.detect = cfg;
        self
    }

    /// Sets the worker-thread count for the race-checking engine
    /// (0 = available parallelism).
    pub fn detect_threads(mut self, threads: usize) -> Self {
        self.detect.threads = threads;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> O2 {
        O2 {
            pta: self.pta,
            shb: self.shb,
            detect: self.detect,
        }
    }
}

/// The configured end-to-end analyzer.
#[derive(Clone, Debug)]
pub struct O2 {
    pta: PtaConfig,
    shb: ShbConfig,
    detect: DetectConfig,
}

impl Default for O2 {
    fn default() -> Self {
        O2Builder::new().build()
    }
}

impl O2 {
    /// Runs the full pipeline on `program` in the solo namespace.
    pub fn analyze(&self, program: &Program) -> AnalysisReport {
        self.analyze_ctx(&ProgramCtx::solo(program))
    }

    /// Runs the full pipeline under an explicit [`ProgramCtx`]. All dense
    /// id tables of the resulting report (points-to arena, `LocTable`,
    /// SHB graph) are namespaced to `ctx.id()`; two contexts can run
    /// concurrently from different threads because nothing here touches
    /// shared mutable state.
    pub fn analyze_ctx(&self, ctx: &ProgramCtx<'_>) -> AnalysisReport {
        self.try_analyze_ctx(ctx, &Budget::unlimited())
            .expect("unlimited budget cannot trip")
    }

    /// Runs the full pipeline under `ctx` with a request-scoped [`Budget`]
    /// checked at every stage boundary (and polled inside the OPA solver
    /// loop and the detect chunk-claim loop). With an unlimited budget
    /// this is exactly [`Self::analyze_ctx`]; with a deadline or step
    /// ceiling, tripping the budget aborts the request with
    /// [`O2Error::Timeout`] / [`O2Error::Budget`] instead of returning a
    /// truncated report.
    ///
    /// # Errors
    ///
    /// The budget's typed error when it trips at any checkpoint.
    pub fn try_analyze_ctx(
        &self,
        ctx: &ProgramCtx<'_>,
        budget: &Budget,
    ) -> Result<AnalysisReport, O2Error> {
        let t0 = Instant::now();
        let pta = o2_pta::analyze_budgeted(ctx, &self.pta, budget)?;
        let t_pta = pta.duration;
        // The pointer-analysis stage budget also bounds the OSA scan: deep
        // object-sensitive runs can explode the method-instance count. If
        // the pointer analysis already blew its budget, the run is a
        // timeout regardless — give the remaining stages a token budget so
        // the report comes back promptly.
        let down_budget = if pta.timed_out {
            Some(Duration::from_millis(500))
        } else {
            self.pta.timeout
        };
        budget.check("osa entry")?;
        let mut osa = run_osa_bounded(ctx, &pta, down_budget);
        let t_osa = osa.duration;
        budget.check("shb entry")?;
        let shb_cfg = ShbConfig {
            timeout: self.shb.timeout.or(down_budget),
            ..self.shb.clone()
        };
        // SHB interns into OSA's location table so every downstream
        // consumer shares one dense id space.
        let shb = build_shb(ctx, &pta, &shb_cfg, &mut osa.locs);
        let t_shb = shb.duration;
        let detect_cfg = if pta.timed_out {
            DetectConfig {
                timeout: Some(Duration::from_millis(500)),
                ..self.detect.clone()
            }
        } else {
            DetectConfig {
                // A stage budget set for the pointer analysis also caps
                // detection unless the caller chose one explicitly.
                timeout: self.detect.timeout.or(self.pta.timeout),
                ..self.detect.clone()
            }
        };
        let races = o2_detect::detect_budgeted(ctx, &pta, &osa, &shb, &detect_cfg, budget)?;
        let t_detect = races.duration;
        Ok(AnalysisReport {
            pta,
            osa,
            shb,
            races,
            timings: Timings {
                pta: t_pta,
                osa: t_osa,
                shb: t_shb,
                detect: t_detect,
                total: t0.elapsed(),
            },
        })
    }

    /// Runs the full pipeline on `program` in the solo namespace with a
    /// request-scoped [`Budget`] (see [`Self::try_analyze_ctx`]).
    ///
    /// # Errors
    ///
    /// The budget's typed error when it trips at any checkpoint.
    pub fn try_analyze(
        &self,
        program: &Program,
        budget: &Budget,
    ) -> Result<AnalysisReport, O2Error> {
        self.try_analyze_ctx(&ProgramCtx::solo(program), budget)
    }

    /// Parses `src` with the textual frontend and analyzes it.
    ///
    /// # Errors
    ///
    /// Returns the parser's error on malformed source.
    pub fn analyze_source(&self, src: &str) -> Result<AnalysisReport, o2_ir::parser::ParseError> {
        let program = o2_ir::parser::parse(src)?;
        Ok(self.analyze(&program))
    }

    /// Parses `src` and analyzes it under `budget`, with every failure —
    /// parse errors included — surfaced as a stage-tagged [`O2Error`].
    ///
    /// # Errors
    ///
    /// [`O2Error::Parse`] (with source position) on malformed source, or
    /// the budget's typed error when it trips.
    pub fn try_analyze_source(
        &self,
        src: &str,
        budget: &Budget,
    ) -> Result<AnalysisReport, O2Error> {
        let program = o2_ir::parser::parse(src).map_err(O2Error::from)?;
        self.try_analyze(&program, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACY: &str = r#"
        class S { field data; }
        class W impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class Main {
            static method main() {
                s = new S();
                w = new W(s);
                w.start();
                x = s.data;
            }
        }
    "#;

    #[test]
    fn end_to_end_pipeline() {
        let report = O2Builder::new().build().analyze_source(RACY).unwrap();
        assert_eq!(report.num_races(), 1);
        assert_eq!(report.num_origins(), 2);
        assert!(!report.timed_out());
        let s = report.summary();
        assert!(s.contains("races=1"), "{s}");
    }

    #[test]
    fn policies_are_configurable() {
        for policy in [Policy::insensitive(), Policy::cfa1(), Policy::origin1()] {
            let report = O2Builder::new()
                .policy(policy)
                .build()
                .analyze_source(RACY)
                .unwrap();
            assert_eq!(report.pta.policy, policy);
            assert_eq!(report.num_races(), 1, "{policy}");
        }
    }

    #[test]
    fn naive_engine_is_available() {
        let report = O2Builder::new()
            .detect_config(DetectConfig::naive())
            .build()
            .analyze_source(RACY)
            .unwrap();
        assert_eq!(report.num_races(), 1);
    }

    #[test]
    fn parse_errors_propagate() {
        let err = O2::default().analyze_source("class {").unwrap_err();
        assert!(err.message.contains("identifier"), "{err}");
    }
}
