//! # o2-racerd — a RacerD-style syntactic race detector baseline
//!
//! A reimplementation of the *design* of Facebook's RacerD (Blackshear et
//! al., OOPSLA 2018) as characterized in §2 of the O2 paper: compositional
//! per-method summaries, clever syntactic reasoning, **no pointer
//! analysis** — aliasing is judged by field *name*, lock protection by a
//! "some lock held" boolean, and there is no happens-before reasoning.
//! This is the comparison baseline of Tables 5, 8 and 9.
//!
//! What is modeled:
//!
//! - bottom-up method summaries of field accesses with a lock bit,
//!   propagated through a class-hierarchy-analysis call graph;
//! - an ownership heuristic: accesses through a locally allocated object
//!   are owned and never reported (RacerD's main false-positive filter);
//! - two warning classes, as in the paper's comparison methodology:
//!   read/write races and unprotected-write pairs.
//!
//! What is deliberately *not* modeled (the reason O2 wins on precision):
//! pointer aliasing, origins, happens-before edges from `start`/`join`,
//! lock identities.
//!
//! ```
//! use o2_ir::parser::parse;
//! use o2_racerd::run_racerd;
//!
//! let program = parse(r#"
//!     class S { field data; }
//!     class W impl Runnable {
//!         field s;
//!         method <init>(s) { this.s = s; }
//!         method run() { s = this.s; s.data = s; }
//!     }
//!     class Main {
//!         static method main() {
//!             s = new S();
//!             w = new W(s);
//!             w.start();
//!             x = s.data;
//!         }
//!     }
//! "#).unwrap();
//! let report = run_racerd(&program);
//! assert!(report.total_warnings() >= 1);
//! ```

#![warn(missing_docs)]

use o2_ir::ids::{FieldId, GStmt, MethodId, VarId};
use o2_ir::program::{Callee, Program, Selector, Stmt};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

/// One field access in a method summary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SummaryAccess {
    /// Accessed field (by name — RacerD does not reason about pointers).
    pub field: FieldId,
    /// The access statement.
    pub stmt: GStmt,
    /// `true` for writes.
    pub is_write: bool,
    /// `true` if *some* lock is held around the access.
    pub locked: bool,
}

/// One reported warning: a pair of conflicting accesses on the same field
/// name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Warning {
    /// The conflicting field.
    pub field: FieldId,
    /// First access.
    pub a: SummaryAccess,
    /// Second access.
    pub b: SummaryAccess,
    /// `true` for an unprotected-write violation (both sides unlocked),
    /// `false` for a read/write race (one side locked).
    pub unprotected_write: bool,
}

/// The RacerD-style report.
#[derive(Clone, Debug, Default)]
pub struct RacerDReport {
    /// Reported warnings (capped per field by the pair budget).
    pub warnings: Vec<Warning>,
    /// Number of read/write race warnings.
    pub num_read_write_races: usize,
    /// Number of unprotected-write pair warnings.
    pub num_unprotected_writes: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl RacerDReport {
    /// Total warnings, the paper's comparison metric ("we add up the
    /// numbers of read/write races and of the pairs of conflict field
    /// accesses shown in unprotected writes").
    pub fn total_warnings(&self) -> usize {
        self.num_read_write_races + self.num_unprotected_writes
    }

    /// Renders a human-readable report.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, w) in self.warnings.iter().enumerate() {
            let kind = if w.unprotected_write {
                "unprotected write"
            } else {
                "read/write race"
            };
            let _ = writeln!(
                out,
                "warning #{}: {kind} on `{}` between {} and {}",
                i + 1,
                program.field_name(w.field),
                program.stmt_label(w.a.stmt),
                program.stmt_label(w.b.stmt),
            );
        }
        out
    }
}

/// Maximum access pairs reported per field.
const PAIR_BUDGET: usize = 10_000;

/// Runs the RacerD-style analysis on `program`.
pub fn run_racerd(program: &Program) -> RacerDReport {
    let start = Instant::now();
    let analysis = Analysis::new(program);
    let summaries = analysis.compute_summaries();
    let concurrent = analysis.concurrent_methods();

    // Group accesses of concurrent methods by field name.
    let mut by_field: BTreeMap<FieldId, Vec<SummaryAccess>> = BTreeMap::new();
    for (m, summary) in summaries.iter().enumerate() {
        let mid = MethodId::from_usize(m);
        if !concurrent.contains(&mid) {
            continue;
        }
        // Only the method's own accesses: callee accesses surface in the
        // callee's own entry (they are in `concurrent` too), so counting
        // summaries here would double-report.
        for a in &summary.own {
            by_field.entry(a.field).or_default().push(*a);
        }
    }

    let mut report = RacerDReport::default();
    let mut seen: BTreeSet<(FieldId, GStmt, GStmt)> = BTreeSet::new();
    for (field, accesses) in by_field {
        let any_write = accesses.iter().any(|a| a.is_write);
        if !any_write || accesses.len() < 2 {
            continue;
        }
        let mut pairs = 0usize;
        for i in 0..accesses.len() {
            for j in (i + 1)..accesses.len() {
                let (a, b) = (accesses[i], accesses[j]);
                if !a.is_write && !b.is_write {
                    continue;
                }
                if a.stmt == b.stmt {
                    continue;
                }
                if a.locked && b.locked {
                    continue; // RacerD: both under (some) lock → protected.
                }
                pairs += 1;
                if pairs > PAIR_BUDGET {
                    break;
                }
                let key = if a.stmt <= b.stmt {
                    (field, a.stmt, b.stmt)
                } else {
                    (field, b.stmt, a.stmt)
                };
                if !seen.insert(key) {
                    continue;
                }
                let unprotected = !a.locked && !b.locked;
                if unprotected {
                    report.num_unprotected_writes += 1;
                } else {
                    report.num_read_write_races += 1;
                }
                report.warnings.push(Warning {
                    field,
                    a,
                    b,
                    unprotected_write: unprotected,
                });
            }
        }
    }
    report
        .warnings
        .sort_by_key(|w| (w.field, w.a.stmt, w.b.stmt));
    report.duration = start.elapsed();
    report
}

#[derive(Clone, Debug, Default)]
struct MethodSummary {
    /// The method's own (non-owned) accesses.
    own: Vec<SummaryAccess>,
}

struct Analysis<'p> {
    program: &'p Program,
    /// CHA dispatch: selector → all concrete targets.
    cha: HashMap<Selector, Vec<MethodId>>,
}

impl<'p> Analysis<'p> {
    fn new(program: &'p Program) -> Self {
        let mut cha: HashMap<Selector, Vec<MethodId>> = HashMap::new();
        for class in &program.classes {
            for (sel, mid) in &class.methods {
                cha.entry(sel.clone()).or_default().push(*mid);
            }
        }
        Analysis { program, cha }
    }

    /// Methods that may run concurrently with something else: everything
    /// syntactically reachable from an origin entry point, plus everything
    /// reachable from main if the program creates origins at all.
    fn concurrent_methods(&self) -> HashSet<MethodId> {
        let mut roots: Vec<MethodId> = Vec::new();
        let mut has_origins = false;
        for (mi, method) in self.program.methods.iter().enumerate() {
            let mid = MethodId::from_usize(mi);
            if self.program.entry_config.is_entry(&method.name) {
                roots.push(mid);
                has_origins = true;
            }
            for instr in &method.body {
                if let Stmt::Spawn { entry, .. } = &instr.stmt {
                    roots.push(*entry);
                    has_origins = true;
                }
            }
        }
        if has_origins {
            roots.push(self.program.main);
        }
        let mut reach: HashSet<MethodId> = HashSet::new();
        let mut stack = roots;
        while let Some(m) = stack.pop() {
            if !reach.insert(m) {
                continue;
            }
            for instr in &self.program.method(m).body {
                match &instr.stmt {
                    Stmt::Call { callee, args, .. } => match callee {
                        Callee::Virtual { name, .. } => {
                            let sel = Selector::new(name.clone(), args.len());
                            if let Some(ts) = self.cha.get(&sel) {
                                stack.extend(ts.iter().copied());
                            }
                            // `start()` reaches the entry methods via the
                            // thread-entry convention.
                            if name == "start" {
                                for entry_name in &self.program.entry_config.thread_entries {
                                    let sel = Selector::new(entry_name.clone(), 0);
                                    if let Some(ts) = self.cha.get(&sel) {
                                        stack.extend(ts.iter().copied());
                                    }
                                }
                            }
                        }
                        Callee::Static { method } => stack.push(*method),
                    },
                    Stmt::New { class, args, .. } => {
                        let sel = Selector::new(o2_ir::program::CTOR_NAME, args.len());
                        if let Some(ctor) = self.program.dispatch(*class, &sel) {
                            stack.push(ctor);
                        }
                    }
                    Stmt::Spawn { entry, .. } => stack.push(*entry),
                    _ => {}
                }
            }
        }
        reach
    }

    /// Per-method summaries: own field accesses with lock bits, with the
    /// ownership filter applied.
    fn compute_summaries(&self) -> Vec<MethodSummary> {
        let mut summaries = Vec::with_capacity(self.program.methods.len());
        for (mi, method) in self.program.methods.iter().enumerate() {
            let mid = MethodId::from_usize(mi);
            // Ownership: variables assigned from `new`/`newarray` in this
            // method own their object; accesses through them are not
            // reported (RacerD's ownership domain).
            let mut owned: HashSet<VarId> = HashSet::new();
            let mut lock_depth: usize = usize::from(method.is_synchronized);
            let mut own = Vec::new();
            for (idx, instr) in method.body.iter().enumerate() {
                let stmt = GStmt::new(mid, idx);
                // Record accesses against the ownership state *before* this
                // statement's own ownership effects.
                if let Some((base, field, is_write)) = instr.stmt.field_access() {
                    if !owned.contains(&base) {
                        own.push(SummaryAccess {
                            field,
                            stmt,
                            is_write,
                            // RacerD treats atomics as protected accesses.
                            locked: lock_depth > 0 || instr.stmt.is_atomic_access(),
                        });
                    }
                }
                if let Some((_, field, is_write)) = instr.stmt.static_access() {
                    own.push(SummaryAccess {
                        field,
                        stmt,
                        is_write,
                        locked: lock_depth > 0,
                    });
                }
                match &instr.stmt {
                    Stmt::New { dst, args, .. } => {
                        // Passing an owned object into a constructor
                        // transfers ownership away.
                        for a in args {
                            owned.remove(a);
                        }
                        owned.insert(*dst);
                    }
                    Stmt::NewArray { dst } => {
                        owned.insert(*dst);
                    }
                    Stmt::Assign { dst, src } => {
                        if owned.contains(src) {
                            owned.insert(*dst);
                        } else {
                            owned.remove(dst);
                        }
                    }
                    Stmt::Call { args, .. } | Stmt::Spawn { args, .. } => {
                        for a in args {
                            owned.remove(a);
                        }
                    }
                    Stmt::StoreField { base, src, .. }
                        // Storing into a non-owned base publishes the value.
                        if !owned.contains(base) => {
                            owned.remove(src);
                        }
                    Stmt::StoreStatic { src, .. } => {
                        owned.remove(src);
                    }
                    // RacerD's coarse model has no reader/writer modes:
                    // any rwlock region counts as "locked".
                    Stmt::MonitorEnter { .. } | Stmt::RwEnter { .. } => lock_depth += 1,
                    Stmt::MonitorExit { .. } | Stmt::RwExit { .. } => {
                        lock_depth = lock_depth.saturating_sub(1)
                    }
                    _ => {}
                }
            }
            summaries.push(MethodSummary { own });
        }
        summaries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_ir::parser::parse;

    #[test]
    fn reports_unprotected_write() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    x = s.data;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        assert!(r.total_warnings() >= 1);
        assert!(r.num_unprotected_writes >= 1);
    }

    #[test]
    fn both_locked_is_protected() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; sync (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    sync (s) { x = s.data; }
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        // The only remaining warnings involve the constructor handoff of
        // W.s, not S.data.
        let data = p.field_by_name("data").unwrap();
        assert!(
            !r.warnings.iter().any(|w| w.field == data),
            "{}",
            r.render(&p)
        );
    }

    #[test]
    fn no_threads_no_warnings() {
        let src = r#"
            class S { field data; }
            class Main {
                static method main() {
                    s = new S();
                    s.data = s;
                    x = s.data;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        assert_eq!(r.total_warnings(), 0);
    }

    #[test]
    fn ownership_filters_local_allocations() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                method run() { s = new S(); s.data = s; x = s.data; }
            }
            class Main {
                static method main() {
                    w1 = new W();
                    w2 = new W();
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        assert_eq!(
            r.total_warnings(),
            0,
            "owned accesses are filtered: {}",
            r.render(&p)
        );
    }

    #[test]
    fn field_name_aliasing_overreports_vs_pointer_analysis() {
        // Two *different* objects with the same field name, each local to
        // one thread: O2 proves disjointness via pointers, RacerD conflates
        // by name and warns — the false-positive mechanism the paper
        // describes.
        let src = r#"
            class S { field data; }
            class W1 impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class W2 impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    a = new S();
                    b = new S();
                    w1 = new W1(a);
                    w2 = new W2(b);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        let data = p.field_by_name("data").unwrap();
        assert!(
            r.warnings.iter().any(|w| w.field == data),
            "RacerD conflates same-named fields: {}",
            r.render(&p)
        );
    }

    #[test]
    fn one_side_locked_is_read_write_race() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; sync (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    x = s.data;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let r = run_racerd(&p);
        assert!(r.num_read_write_races >= 1, "{}", r.render(&p));
    }
}
