//! Incremental race checking over the analysis database.
//!
//! Candidate collection (phase 1 of [`detect`](crate::detect)) is cheap
//! and always re-runs; what the database memoizes is the expensive part —
//! the per-candidate pair check. A candidate's verdict
//! ([`o2_db::VerdictArtifact`]) is replayed when a digest over *all of
//! the check's inputs* is unchanged:
//!
//! - the candidate itself: location, (region-merged) access list with
//!   positions, regions and canonical lockset contents, and the
//!   per-origin multi-instance / sole-allocator flags;
//! - the detection configuration (minus threads and timeout, which do
//!   not affect the outcome);
//! - the happens-before neighborhood: the trace lengths and inter-origin
//!   edges of every origin the pair check's HB traversal can reach from
//!   the candidate's origins.
//!
//! The cached verdict stores exactly the counters the check contributed
//! (`pairs_checked`, `lock_pruned`, `hb_pruned`), so the merged report —
//! including the counters printed by `RaceReport::to_json` — is
//! byte-identical to a cold run's.

use crate::{
    check_candidates_parallel, collect_candidates, dedup_key, Candidate, DetectConfig, KeyOutcome,
    Race, RaceAccess, RaceReport,
};
use o2_analysis::{memkey_to_db, KeyResolver, MemKey, OsaResult};
use o2_db::{
    digest_of_sorted, AnalysisDb, DbRace, DbRaceAccess, DbStmt, Digest, DigestHasher, FastMap,
    StableIds, VerdictArtifact,
};
use o2_ir::error::{Budget, O2Error};
use o2_ir::ids::{GStmt, MethodId};
use o2_ir::program::Program;
use o2_ir::ProgramCtx;
use o2_pta::{CanonIndex, OriginId, PtaResult};
use o2_shb::{LockElem, ShbGraph};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// A warm detection run: the report plus replay accounting.
#[derive(Debug)]
pub struct DetectIncr {
    /// The merged report, equal to what a cold [`crate::detect`] produces.
    pub report: RaceReport,
    /// Candidates whose verdict was replayed from the database.
    pub candidates_replayed: usize,
    /// Candidates actually re-checked.
    pub candidates_rechecked: usize,
    /// Access pairs accounted from cached verdicts.
    pub pairs_replayed: u64,
    /// Access pairs examined by this run's checks.
    pub pairs_rechecked: u64,
}

fn write_stmt(h: &mut DigestHasher, canon: &CanonIndex, g: GStmt) {
    h.write_str(canon.qname(g.method));
    h.write_u32(g.index);
}

/// Canonical digest of one lock element. Fresh locks are expressed as
/// ordinals relative to their origin's fresh-lock base, which is stable
/// across runs (unlike the raw `u32::MAX - k` id).
fn elem_digest(e: LockElem, program: &Program, canon: &CanonIndex, fresh_base: u32) -> Digest {
    let mut h = DigestHasher::with_tag("o2.detect.elem.v1");
    match e {
        // Fresh locks live at `u32::MAX - k` for small counter values `k`;
        // dense object ids never approach the upper half of the id space.
        LockElem::Obj(o) if o.0 >= u32::MAX / 2 => {
            h.write_u8(1);
            h.write_u32((u32::MAX - o.0).wrapping_sub(fresh_base + 1));
        }
        LockElem::Obj(o) => {
            h.write_u8(0);
            h.write_digest(canon.obj_digest(o));
        }
        LockElem::Class(c) => {
            h.write_u8(2);
            h.write_str(&program.class(c).name);
        }
        LockElem::Dispatcher(d) => {
            h.write_u8(3);
            h.write_u32(d as u32);
        }
        LockElem::AtomicCell(o, f) => {
            h.write_u8(4);
            h.write_digest(canon.obj_digest(o));
            h.write_str(program.field_name(f));
        }
        LockElem::RwRead(o) if o.0 >= u32::MAX / 2 => {
            h.write_u8(5);
            h.write_u32((u32::MAX - o.0).wrapping_sub(fresh_base + 1));
        }
        LockElem::RwRead(o) => {
            h.write_u8(6);
            h.write_digest(canon.obj_digest(o));
        }
        LockElem::RwWrite(o) if o.0 >= u32::MAX / 2 => {
            h.write_u8(7);
            h.write_u32((u32::MAX - o.0).wrapping_sub(fresh_base + 1));
        }
        LockElem::RwWrite(o) => {
            h.write_u8(8);
            h.write_digest(canon.obj_digest(o));
        }
        LockElem::Executor(e) => {
            h.write_u8(9);
            h.write_u32(e as u32);
        }
    }
    h.finish()
}

fn write_memkey(h: &mut DigestHasher, key: MemKey, program: &Program, canon: &CanonIndex) {
    match key {
        MemKey::Field(obj, f) => {
            h.write_u8(0);
            h.write_digest(canon.obj_digest(obj));
            h.write_str(program.field_name(f));
        }
        MemKey::Static(c, f) => {
            h.write_u8(1);
            h.write_str(&program.class(c).name);
            h.write_str(program.field_name(f));
        }
    }
}

/// Per-origin happens-before signatures: `local` digests one origin's
/// HB-relevant state (trace length plus outgoing entry/join arcs);
/// `reach` is the set of origins a HB traversal starting at this origin
/// can visit (entry edges parent→child, join edges child→parent).
struct HbSigs {
    local: Vec<Digest>,
    reach: Vec<Vec<u32>>,
}

fn hb_sigs(shb: &ShbGraph, canon: &CanonIndex, include_len: bool) -> HbSigs {
    let n = shb.traces.len();
    let mut out_arcs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut hashers: Vec<DigestHasher> = (0..n)
        .map(|i| {
            let mut h = DigestHasher::with_tag("o2.hb.origin.v1");
            h.write_digest(canon.origin_digest(OriginId(i as u32)));
            // The optimized traversal never reads intermediate trace
            // lengths; only the naive walk does. Excluding them here keeps
            // a body edit in origin X from invalidating candidates that
            // can merely *reach* X through the spawning parent.
            if include_len {
                h.write_u32(shb.traces[i].len);
            }
            h
        })
        .collect();
    for e in &shb.entry_edges {
        out_arcs[e.parent.0 as usize].push(e.child.0);
        let h = &mut hashers[e.parent.0 as usize];
        h.write_u8(1);
        h.write_digest(canon.origin_digest(e.child));
        h.write_u32(e.pos);
    }
    for j in &shb.join_edges {
        out_arcs[j.child.0 as usize].push(j.parent.0);
        let h = &mut hashers[j.child.0 as usize];
        h.write_u8(2);
        h.write_digest(canon.origin_digest(j.parent));
        h.write_u32(j.pos);
    }
    // Condvar edges (notifier → waiter) are part of the HB neighborhood
    // exactly like entry edges: an edit that adds or moves a notify must
    // invalidate every candidate whose traversal could cross it.
    for c in &shb.cond_edges {
        out_arcs[c.from.0 as usize].push(c.to.0);
        let h = &mut hashers[c.from.0 as usize];
        h.write_u8(3);
        h.write_digest(canon.origin_digest(c.to));
        h.write_u32(c.from_pos);
        h.write_u32(c.to_pos);
    }
    let local: Vec<Digest> = hashers.into_iter().map(|h| h.finish()).collect();
    let mut reach: Vec<Vec<u32>> = Vec::with_capacity(n);
    for o in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![o as u32];
        let mut set = Vec::new();
        while let Some(x) = stack.pop() {
            if std::mem::replace(&mut seen[x as usize], true) {
                continue;
            }
            set.push(x);
            stack.extend(out_arcs[x as usize].iter().copied());
        }
        set.sort_unstable();
        reach.push(set);
    }
    HbSigs { local, reach }
}

/// Memo tables shared across the candidate digests of one run. Locksets
/// are interned ([`o2_shb::LockSets`]) and candidates cluster on a few
/// origin sets, so both sub-digests repeat heavily; computing each once
/// keeps the digest pass cheaper than the checks it replaces.
#[derive(Default)]
struct SigMemo {
    /// `(lockset id, fresh base)` → sorted element digests.
    locksets: FastMap<(u32, u32), Vec<Digest>>,
    /// Sorted accessing-origin set → HB-neighborhood signature.
    hoods: FastMap<Vec<u32>, Digest>,
}

/// Digest over everything [`crate::check_candidate`] reads for one
/// candidate.
#[allow(clippy::too_many_arguments)]
fn candidate_digest(
    cand: &Candidate,
    program: &Program,
    canon: &CanonIndex,
    shb: &ShbGraph,
    fresh_base: &[u32],
    hb: &HbSigs,
    config_sig: Digest,
    memo: &mut SigMemo,
) -> Digest {
    let mut h = DigestHasher::with_tag("o2.cand.v1");
    h.write_digest(config_sig);
    write_memkey(&mut h, cand.key, program, canon);
    h.write_u64(cand.accesses.len() as u64);
    let mut origins: Vec<u32> = Vec::new();
    for &(origin, a) in &cand.accesses {
        if !origins.contains(&origin.0) {
            origins.push(origin.0);
        }
        h.write_digest(canon.origin_digest(origin));
        write_stmt(&mut h, canon, a.stmt);
        h.write_bool(a.is_write);
        h.write_u32(a.pos);
        h.write_u32(a.region);
        let fresh = fresh_base.get(origin.0 as usize).copied().unwrap_or(0);
        let elems = memo
            .locksets
            .entry((a.lockset.0, fresh))
            .or_insert_with(|| {
                let mut elems: Vec<Digest> = shb
                    .locks
                    .set_elems(a.lockset)
                    .iter()
                    .map(|&eid| elem_digest(shb.locks.elem_data(eid), program, canon, fresh))
                    .collect();
                elems.sort_unstable();
                elems
            });
        h.write_u64(elems.len() as u64);
        for &d in elems.iter() {
            h.write_digest(d);
        }
    }
    // Per-origin flags in first-appearance order (deterministic).
    for &o in &origins {
        let (multi, sole) = cand
            .flags
            .get(o as usize)
            .copied()
            .unwrap_or((false, false));
        h.write_digest(canon.origin_digest(OriginId(o)));
        h.write_bool(multi);
        h.write_bool(sole);
    }
    // HB neighborhood: every origin the pair check can traverse.
    let mut okey = origins;
    okey.sort_unstable();
    let hood_sig = match memo.hoods.get(&okey) {
        Some(&d) => d,
        None => {
            let mut hood: BTreeSet<u32> = BTreeSet::new();
            for &o in &okey {
                hood.extend(hb.reach[o as usize].iter().copied());
            }
            let hood_locals: Vec<Digest> = hood.iter().map(|&o| hb.local[o as usize]).collect();
            let d = digest_of_sorted("o2.cand.hood.v1", &hood_locals);
            memo.hoods.insert(okey, d);
            d
        }
    };
    h.write_digest(hood_sig);
    h.finish()
}

/// Digest of the [`DetectConfig`] fields that influence a candidate's
/// outcome (threads and timeout do not).
fn detect_config_sig(config: &DetectConfig) -> Digest {
    let mut h = DigestHasher::with_tag("o2.detect.cfg.v1");
    h.write_bool(config.integer_hb);
    h.write_bool(config.canonical_locksets);
    h.write_bool(config.lock_region_merging);
    h.write_bool(config.hb_cache);
    h.write_bool(config.preloop_prune);
    h.write_u64(config.max_pairs_per_location as u64);
    h.finish()
}

fn race_to_db(r: &Race, program: &Program, canon: &CanonIndex, names: &mut StableIds) -> DbRace {
    let side = |a: &RaceAccess, names: &mut StableIds| DbRaceAccess {
        origin: canon.origin_digest(a.origin),
        stmt: DbStmt {
            method: names.intern(canon.qname(a.stmt.method)),
            index: a.stmt.index,
        },
        is_write: a.is_write,
    };
    DbRace {
        key: memkey_to_db(r.key, program, canon, names),
        a: side(&r.a, names),
        b: side(&r.b, names),
    }
}

/// Memoized name → id resolution for verdict decoding. Stored races
/// repeat the same few origins, methods, and keys; without the memo a
/// warm run pays a string-keyed lookup per race side.
#[derive(Default)]
struct RaceMemo {
    keys: KeyResolver,
    methods: FastMap<u32, Option<MethodId>>,
}

impl RaceMemo {
    fn method(&mut self, canon: &CanonIndex, names: &StableIds, id: u32) -> Option<MethodId> {
        *self
            .methods
            .entry(id)
            .or_insert_with(|| names.resolve(id).and_then(|q| canon.method_of_qname(q)))
    }
}

fn race_side(
    a: &DbRaceAccess,
    canon: &CanonIndex,
    names: &StableIds,
    memo: &mut RaceMemo,
) -> Option<RaceAccess> {
    Some(RaceAccess {
        origin: canon.origin_of_digest(a.origin)?,
        stmt: GStmt::new(
            memo.method(canon, names, a.stmt.method)?,
            a.stmt.index as usize,
        ),
        is_write: a.is_write,
    })
}

fn race_from_db(
    r: &DbRace,
    program: &Program,
    canon: &CanonIndex,
    names: &StableIds,
    memo: &mut RaceMemo,
) -> Option<Race> {
    Some(Race {
        key: memo.keys.memkey(program, canon, names, r.key)?,
        a: race_side(&r.a, canon, names, memo)?,
        b: race_side(&r.b, canon, names, memo)?,
    })
}

/// Runs race detection incrementally: candidates whose input digest has a
/// stored verdict are replayed; the rest are checked (in parallel, as in
/// the cold path); the merge is identical to [`crate::detect`]'s, so the
/// report — counters included — is byte-identical to a cold run. The
/// database section is rewritten to exactly this run's verdicts unless
/// the run timed out.
#[allow(clippy::too_many_arguments)]
pub fn detect_incremental(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
    canon: &CanonIndex,
    fresh_base: &[u32],
    db: &mut AnalysisDb,
) -> DetectIncr {
    detect_incremental_inner(ctx, pta, osa, shb, config, canon, fresh_base, db, None).0
}

/// Like [`detect_incremental`], but polls a request-scoped [`Budget`] in
/// the chunk-claim loop and aborts with a typed error when it trips. A
/// budget-aborted run keeps the database's previous verdicts (same rule
/// as a truncation timeout: the run never saw the full candidate set).
///
/// # Errors
///
/// [`O2Error::Timeout`] / [`O2Error::Budget`] when the budget trips.
#[allow(clippy::too_many_arguments)]
pub fn detect_incremental_budgeted(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
    canon: &CanonIndex,
    fresh_base: &[u32],
    db: &mut AnalysisDb,
    budget: &Budget,
) -> Result<DetectIncr, O2Error> {
    budget.check("detect entry")?;
    let b = if budget.is_unlimited() {
        None
    } else {
        Some(budget)
    };
    let (incr, budget_hit) =
        detect_incremental_inner(ctx, pta, osa, shb, config, canon, fresh_base, db, b);
    if budget_hit {
        budget.check("detect chunk claim")?;
        return Err(O2Error::Timeout(
            "deadline exceeded at detect chunk claim".into(),
        ));
    }
    Ok(incr)
}

#[allow(clippy::too_many_arguments)]
fn detect_incremental_inner(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
    canon: &CanonIndex,
    fresh_base: &[u32],
    db: &mut AnalysisDb,
    budget: Option<&Budget>,
) -> (DetectIncr, bool) {
    debug_assert_eq!(
        pta.program_id,
        ctx.id(),
        "detect_incremental: PtaResult from a different ProgramCtx"
    );
    debug_assert_eq!(
        shb.program_id,
        ctx.id(),
        "detect_incremental: ShbGraph from a different ProgramCtx"
    );
    debug_assert_eq!(
        canon.program_id(),
        ctx.id(),
        "detect_incremental: CanonIndex from a different ProgramCtx"
    );
    let program = ctx.program();
    let start = Instant::now();
    let deadline = config.timeout.map(|t| start + t);
    let mut report = RaceReport::default();
    let mut names = std::mem::take(&mut db.names);

    let (candidates, prune) = collect_candidates(program, pta, osa, shb, config);
    report.prune = prune;
    let hb = hb_sigs(shb, canon, !config.integer_hb);
    let cfg_sig = detect_config_sig(config);

    let mut memo = SigMemo::default();
    let digests: Vec<Digest> = candidates
        .iter()
        .map(|c| candidate_digest(c, program, canon, shb, fresh_base, &hb, cfg_sig, &mut memo))
        .collect();

    // Partition into replayable and to-check. Decoding failures (stale
    // name/digest references) fall through to a re-check. The old verdict
    // map is taken out wholesale: replayed artifacts move into the next
    // map as-is instead of being re-encoded through `race_to_db`.
    let mut old_verdicts = std::mem::take(&mut db.verdicts);
    let mut outcomes: Vec<Option<KeyOutcome>> = Vec::with_capacity(candidates.len());
    let mut replayed: Vec<bool> = vec![false; candidates.len()];
    let mut todo: Vec<usize> = Vec::new();
    let mut candidates_replayed = 0usize;
    let mut pairs_replayed = 0u64;
    let mut rmemo = RaceMemo::default();
    for (i, d) in digests.iter().enumerate() {
        let replay = old_verdicts.get(d).and_then(|art| {
            let races: Option<Vec<Race>> = art
                .races
                .iter()
                .map(|r| race_from_db(r, program, canon, &names, &mut rmemo))
                .collect();
            Some(KeyOutcome {
                races: races?,
                pairs_checked: art.pairs_checked,
                lock_pruned: art.lock_pruned,
                hb_pruned: art.hb_pruned,
                pairs_budget_hit: art.budget_hit,
                timed_out: false,
            })
        });
        match replay {
            Some(o) => {
                candidates_replayed += 1;
                pairs_replayed += o.pairs_checked;
                replayed[i] = true;
                outcomes.push(Some(o));
            }
            None => {
                todo.push(i);
                outcomes.push(None);
            }
        }
    }

    let budget_flag = std::sync::atomic::AtomicBool::new(false);
    let (checked, hits, misses, out_of_time, workers) = check_candidates_parallel(
        &candidates,
        &todo,
        shb,
        config,
        deadline,
        config.effective_threads(),
        budget,
        &budget_flag,
    );
    let budget_hit = budget_flag.load(std::sync::atomic::Ordering::Relaxed);
    report.lock_cache_hits = hits;
    report.lock_cache_misses = misses;
    let candidates_rechecked = checked.len();
    let mut pairs_rechecked = 0u64;
    for (i, o) in checked {
        pairs_rechecked += o.pairs_checked;
        outcomes[i] = Some(o);
    }

    // A timed-out (or budget-aborted) run saw only part of the candidate
    // set; it keeps the old verdicts rather than dropping artifacts it
    // never got to, so verdict storage is skipped entirely below.
    let timed_out_run = out_of_time || budget_hit || outcomes.iter().flatten().any(|o| o.timed_out);

    // Deterministic merge, identical to the cold path's phase 3.
    let mut seen: std::collections::HashSet<(MemKey, GStmt, GStmt)> = Default::default();
    let mut next_verdicts: BTreeMap<Digest, VerdictArtifact> = BTreeMap::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        let Some(outcome) = outcome else {
            continue; // never checked: the run timed out first
        };
        report.region_merged += candidates[i].region_merged;
        report.pairs_checked += outcome.pairs_checked;
        report.lock_pruned += outcome.lock_pruned;
        report.hb_pruned += outcome.hb_pruned;
        report.pairs_budget_hit |= outcome.pairs_budget_hit;
        report.timed_out |= outcome.timed_out;
        for r in &outcome.races {
            if seen.insert(dedup_key(r.key, r.a.stmt, r.b.stmt)) {
                report.races.push(*r);
            }
        }
        if !timed_out_run {
            // A replayed candidate's stored artifact is moved over as-is
            // (same digest ⇒ same content); only re-checked candidates
            // are encoded.
            let art = if replayed[i] {
                old_verdicts.remove(&digests[i])
            } else {
                None
            };
            let art = art.unwrap_or_else(|| VerdictArtifact {
                races: outcome
                    .races
                    .iter()
                    .map(|r| race_to_db(r, program, canon, &mut names))
                    .collect(),
                pairs_checked: outcome.pairs_checked,
                lock_pruned: outcome.lock_pruned,
                hb_pruned: outcome.hb_pruned,
                budget_hit: outcome.pairs_budget_hit,
            });
            next_verdicts.insert(digests[i], art);
        }
    }
    report.timed_out |= out_of_time;
    report.threads_used = workers;
    report
        .races
        .sort_by_key(|r| (r.key, r.a.stmt, r.b.stmt, r.a.origin.0, r.b.origin.0));
    report.duration = start.elapsed();

    db.verdicts = if timed_out_run {
        old_verdicts
    } else {
        next_verdicts
    };
    db.names = names;
    let _ = pta;
    (
        DetectIncr {
            report,
            candidates_replayed,
            candidates_rechecked,
            pairs_replayed,
            pairs_rechecked,
        },
        budget_hit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect;
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb_incremental, ShbConfig};

    const SRC: &str = r#"
        class S { field a; field b; }
        class W1 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.a = s; }
        }
        class W2 impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.b = s; }
        }
        class Main {
            static method main() {
                s = new S();
                w1 = new W1(s);
                w2 = new W2(s);
                w1.start();
                w2.start();
                x = s.a;
                y = s.b;
            }
        }
    "#;

    struct Stages {
        p: o2_ir::Program,
        pta: o2_pta::PtaResult,
        canon: CanonIndex,
        osa: o2_analysis::OsaResult,
    }

    fn stages(src: &str) -> Stages {
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let digests = o2_ir::digest_program(&p);
        let canon = CanonIndex::build(&o2_ir::ProgramCtx::solo(&p), &pta, &digests);
        let osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        Stages { p, pta, canon, osa }
    }

    fn reports_equal(a: &RaceReport, b: &RaceReport) -> bool {
        a.races == b.races
            && a.pairs_checked == b.pairs_checked
            && a.lock_pruned == b.lock_pruned
            && a.hb_pruned == b.hb_pruned
            && a.region_merged == b.region_merged
            && a.timed_out == b.timed_out
    }

    #[test]
    fn warm_replay_equals_cold_detect() {
        let mut s = stages(SRC);
        let cfg = DetectConfig::o2();
        let mut db = AnalysisDb::new(Digest(1, 1));
        let shb = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &ShbConfig::default(),
            &s.canon,
            &mut s.osa.locs,
            &mut db,
        );
        let cold = detect(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &cfg,
        );
        let first = detect_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &cfg,
            &s.canon,
            &shb.fresh_base,
            &mut db,
        );
        assert_eq!(first.candidates_replayed, 0);
        assert!(reports_equal(&first.report, &cold));
        let second = detect_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &cfg,
            &s.canon,
            &shb.fresh_base,
            &mut db,
        );
        assert_eq!(second.candidates_rechecked, 0);
        assert_eq!(second.candidates_replayed, first.candidates_rechecked);
        assert!(reports_equal(&second.report, &cold));
        assert_eq!(
            second.report.to_json(&s.p),
            cold.to_json(&s.p),
            "warm JSON must be byte-identical"
        );
    }

    #[test]
    fn edit_rechecks_only_affected_candidates() {
        let mut s = stages(SRC);
        let cfg = DetectConfig::o2();
        let mut db = AnalysisDb::new(Digest(1, 1));
        let shb = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &ShbConfig::default(),
            &s.canon,
            &mut s.osa.locs,
            &mut db,
        );
        let base = detect_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &cfg,
            &s.canon,
            &shb.fresh_base,
            &mut db,
        );
        assert!(base.candidates_rechecked >= 2, "S.a and S.b are candidates");
        // Edit W2.run (touches S.b only). W1's candidate on S.a still
        // involves main (entry edges), but main's own trace changes only
        // if main changed — it did not, so S.a replays.
        let edited = SRC.replace(
            "method run() { s = this.s; s.b = s; }",
            "method run() { s = this.s; s.b = s; z = s.b; }",
        );
        let mut s2 = stages(&edited);
        let shb2 = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&s2.p),
            &s2.pta,
            &ShbConfig::default(),
            &s2.canon,
            &mut s2.osa.locs,
            &mut db,
        );
        let warm = detect_incremental(
            &o2_ir::ProgramCtx::solo(&s2.p),
            &s2.pta,
            &s2.osa,
            &shb2.graph,
            &cfg,
            &s2.canon,
            &shb2.fresh_base,
            &mut db,
        );
        let cold = detect(
            &o2_ir::ProgramCtx::solo(&s2.p),
            &s2.pta,
            &s2.osa,
            &shb2.graph,
            &cfg,
        );
        assert!(reports_equal(&warm.report, &cold));
        assert_eq!(warm.report.to_json(&s2.p), cold.to_json(&s2.p));
        assert!(
            warm.candidates_replayed >= 1,
            "the untouched candidate replays: {} replayed / {} rechecked",
            warm.candidates_replayed,
            warm.candidates_rechecked
        );
        assert!(
            warm.candidates_rechecked < base.candidates_rechecked,
            "strictly fewer candidates re-checked"
        );
    }

    #[test]
    fn config_change_invalidates_verdicts() {
        let mut s = stages(SRC);
        let mut db = AnalysisDb::new(Digest(1, 1));
        let shb = build_shb_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &ShbConfig::default(),
            &s.canon,
            &mut s.osa.locs,
            &mut db,
        );
        let cfg = DetectConfig::o2();
        detect_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &cfg,
            &s.canon,
            &shb.fresh_base,
            &mut db,
        );
        let naive = DetectConfig::naive();
        let warm = detect_incremental(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &naive,
            &s.canon,
            &shb.fresh_base,
            &mut db,
        );
        assert_eq!(warm.candidates_replayed, 0, "different engine, no replay");
        let cold = detect(
            &o2_ir::ProgramCtx::solo(&s.p),
            &s.pta,
            &s.osa,
            &shb.graph,
            &naive,
        );
        assert!(reports_equal(&warm.report, &cold));
    }
}
