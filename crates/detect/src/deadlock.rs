//! Static deadlock detection on top of the SHB graph.
//!
//! The paper notes (§3) that OPA/OSA "can benefit any analysis that
//! requires analyzing pointers or ownership of memory accesses, e.g.,
//! deadlock, over-synchronization, and memory isolation". This module is
//! that deadlock analysis: a classic lock-order graph built from the
//! per-origin acquisition traces that the SHB walker already records.
//!
//! An edge `a → b` means some origin acquires lock `b` while holding `a`.
//! A cycle among locks acquired by *different* origins — with no common
//! "gate" lock held around all participating acquisitions, and with no
//! happens-before ordering between the acquisition points — is reported
//! as a potential deadlock.

use o2_ir::ids::GStmt;
use o2_ir::program::Program;
use o2_pta::OriginId;
use o2_shb::{LockElem, ShbGraph};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// One lock-order edge with its provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockOrderEdge {
    /// Lock already held.
    pub held: u32,
    /// Lock being acquired.
    pub acquired: u32,
    /// Origin performing the nested acquisition.
    pub origin: OriginId,
    /// Acquisition statement.
    pub stmt: GStmt,
    /// Trace position of the acquisition (for happens-before checks).
    pub pos: u32,
    /// Canonical lockset held before the acquisition (for gate-lock
    /// reasoning).
    pub held_before: o2_shb::LockSetId,
}

/// A reported potential deadlock: a cyclic lock-order among ≥ 2 origins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockCycle {
    /// The lock elements forming the cycle, in order.
    pub locks: Vec<LockElem>,
    /// The origins contributing the edges, in cycle order.
    pub origins: Vec<OriginId>,
    /// The acquisition statements, in cycle order.
    pub stmts: Vec<GStmt>,
}

/// The result of deadlock detection.
#[derive(Clone, Debug, Default)]
pub struct DeadlockReport {
    /// Distinct potential deadlock cycles (length 2; longer cycles are
    /// reported through their 2-cycle projections when present, plus
    /// dedicated 3-cycles).
    pub cycles: Vec<DeadlockCycle>,
    /// All lock-order edges (for diagnostics).
    pub num_edges: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl DeadlockReport {
    /// Renders a human-readable report.
    pub fn render(&self, program: &Program, shb: &ShbGraph) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, c) in self.cycles.iter().enumerate() {
            let locks: Vec<String> = c
                .locks
                .iter()
                .map(|l| match l {
                    LockElem::Obj(o) => format!("obj#{}", o.0),
                    LockElem::Class(cl) => format!("class {}", program.class(*cl).name),
                    LockElem::Dispatcher(d) => format!("dispatcher#{d}"),
                    LockElem::AtomicCell(o, f) => {
                        format!("atomic obj#{}.{}", o.0, program.field_name(*f))
                    }
                    LockElem::RwRead(o) => format!("rdlock obj#{}", o.0),
                    LockElem::RwWrite(o) => format!("wrlock obj#{}", o.0),
                    LockElem::Executor(e) => format!("executor#{e}"),
                })
                .collect();
            let _ = writeln!(
                out,
                "deadlock #{}: cycle {} between origins {:?} at {}",
                i + 1,
                locks.join(" -> "),
                c.origins.iter().map(|o| o.0).collect::<Vec<_>>(),
                c.stmts
                    .iter()
                    .map(|s| program.stmt_label(*s))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
        if self.cycles.is_empty() {
            out.push_str("no potential deadlocks detected\n");
        }
        let _ = shb;
        out
    }
}

/// Runs deadlock detection over an SHB graph.
pub fn detect_deadlocks(program: &Program, shb: &ShbGraph) -> DeadlockReport {
    let start = Instant::now();
    let _ = program;
    // Collect lock-order edges per (held, acquired) pair.
    let mut edges: BTreeMap<(u32, u32), Vec<LockOrderEdge>> = BTreeMap::new();
    for (oi, trace) in shb.traces.iter().enumerate() {
        let origin = OriginId(oi as u32);
        for acq in &trace.acquires {
            for &held in shb.locks.set_elems(acq.held_before) {
                for &acquired in &acq.elems {
                    if held == acquired {
                        continue;
                    }
                    edges
                        .entry((held, acquired))
                        .or_default()
                        .push(LockOrderEdge {
                            held,
                            acquired,
                            origin,
                            stmt: acq.stmt,
                            pos: acq.pos,
                            held_before: acq.held_before,
                        });
                }
            }
        }
    }
    let num_edges = edges.len();

    let mut cycles = Vec::new();
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (&(a, b), fwd_edges) in &edges {
        if a >= b {
            continue; // handle each unordered pair once
        }
        let Some(back_edges) = edges.get(&(b, a)) else {
            continue;
        };
        // A 2-cycle is a potential deadlock if two *different* origins can
        // take the two orders concurrently (no happens-before between the
        // acquisition points, no common gate lock).
        'search: for e1 in fwd_edges {
            for e2 in back_edges {
                if e1.origin == e2.origin {
                    continue;
                }
                // Gate lock: a third lock held around both nested
                // acquisitions serializes them.
                let g1: BTreeSet<u32> = held_set(shb, e1).collect();
                let gated = held_set(shb, e2).any(|l| g1.contains(&l));
                if gated {
                    continue;
                }
                // Happens-before between the acquisition points kills the
                // interleaving.
                let p1 = (e1.origin, e1.pos);
                let p2 = (e2.origin, e2.pos);
                if shb.happens_before(p1, p2) || shb.happens_before(p2, p1) {
                    continue;
                }
                if seen.insert((a, b)) {
                    cycles.push(DeadlockCycle {
                        locks: vec![shb.locks.elem_data(a), shb.locks.elem_data(b)],
                        origins: vec![e1.origin, e2.origin],
                        stmts: vec![e1.stmt, e2.stmt],
                    });
                }
                break 'search;
            }
        }
    }

    // Length-3 cycles a→b→c→a with three distinct origins (no 2-cycle
    // projection among them, so they are genuinely new reports).
    let keys: Vec<(u32, u32)> = edges.keys().copied().collect();
    let mut seen3: BTreeSet<[u32; 3]> = BTreeSet::new();
    for &(a, b) in &keys {
        for &(b2, c) in &keys {
            if b2 != b || c == a {
                continue;
            }
            if !edges.contains_key(&(c, a)) {
                continue;
            }
            let mut cyc = [a, b, c];
            cyc.sort_unstable();
            if seen.contains(&(cyc[0], cyc[1]))
                || seen.contains(&(cyc[0], cyc[2]))
                || seen.contains(&(cyc[1], cyc[2]))
                || !seen3.insert(cyc)
            {
                continue;
            }
            let pick = |h: u32, acq: u32| edges[&(h, acq)].first().copied();
            let (Some(e1), Some(e2), Some(e3)) = (pick(a, b), pick(b, c), pick(c, a)) else {
                continue;
            };
            let origins: BTreeSet<u32> = [e1.origin.0, e2.origin.0, e3.origin.0]
                .into_iter()
                .collect();
            if origins.len() < 3 {
                continue;
            }
            // Gate lock: a common lock held around all three nested
            // acquisitions serializes the cycle (same check as 2-cycles).
            let g1: BTreeSet<u32> = held_set(shb, &e1).collect();
            let g2: BTreeSet<u32> = held_set(shb, &e2).collect();
            let gated = held_set(shb, &e3).any(|l| g1.contains(&l) && g2.contains(&l));
            if gated {
                continue;
            }
            // No pairwise happens-before among the three acquisitions.
            let pts = [
                (e1.origin, e1.pos),
                (e2.origin, e2.pos),
                (e3.origin, e3.pos),
            ];
            let ordered = pts.iter().any(|&x| {
                pts.iter()
                    .any(|&y| x != y && (shb.happens_before(x, y) || shb.happens_before(y, x)))
            });
            if ordered {
                continue;
            }
            cycles.push(DeadlockCycle {
                locks: vec![
                    shb.locks.elem_data(a),
                    shb.locks.elem_data(b),
                    shb.locks.elem_data(c),
                ],
                origins: vec![e1.origin, e2.origin, e3.origin],
                stmts: vec![e1.stmt, e2.stmt, e3.stmt],
            });
        }
    }

    DeadlockReport {
        cycles,
        num_edges,
        duration: start.elapsed(),
    }
}

/// Locks held at the acquisition, excluding the two cycle locks.
fn held_set<'a>(shb: &'a ShbGraph, e: &'a LockOrderEdge) -> impl Iterator<Item = u32> + 'a {
    shb.locks
        .set_elems(e.held_before)
        .iter()
        .copied()
        .filter(move |&l| l != e.held && l != e.acquired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    fn deadlocks(src: &str) -> (o2_ir::Program, ShbGraph, DeadlockReport) {
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut o2_analysis::LocTable::new(),
        );
        let report = detect_deadlocks(&p, &shb);
        (p, shb, report)
    }

    const AB_BA: &str = r#"
        class L { }
        class T1 impl Runnable {
            field a; field b;
            method <init>(a, b) { this.a = a; this.b = b; }
            method run() {
                a = this.a; b = this.b;
                sync (a) { sync (b) { x = a; } }
            }
        }
        class T2 impl Runnable {
            field a; field b;
            method <init>(a, b) { this.a = a; this.b = b; }
            method run() {
                a = this.a; b = this.b;
                sync (b) { sync (a) { x = b; } }
            }
        }
        class Main {
            static method main() {
                a = new L();
                b = new L();
                t1 = new T1(a, b);
                t2 = new T2(a, b);
                t1.start();
                t2.start();
            }
        }
    "#;

    #[test]
    fn classic_ab_ba_deadlock() {
        let (p, shb, report) = deadlocks(AB_BA);
        assert_eq!(report.cycles.len(), 1, "{}", report.render(&p, &shb));
        assert_eq!(report.cycles[0].locks.len(), 2);
    }

    #[test]
    fn consistent_order_is_safe() {
        let src = AB_BA.replace(
            "sync (b) { sync (a) { x = b; } }",
            "sync (a) { sync (b) { x = b; } }",
        );
        let (p, shb, report) = deadlocks(&src);
        assert!(report.cycles.is_empty(), "{}", report.render(&p, &shb));
    }

    #[test]
    fn same_origin_nesting_is_safe() {
        // One thread acquiring in both orders sequentially cannot deadlock
        // with itself.
        let src = r#"
            class L { }
            class T impl Runnable {
                field a; field b;
                method <init>(a, b) { this.a = a; this.b = b; }
                method run() {
                    a = this.a; b = this.b;
                    sync (a) { sync (b) { x = a; } }
                    sync (b) { sync (a) { x = b; } }
                }
            }
            class Main {
                static method main() {
                    a = new L();
                    b = new L();
                    t = new T(a, b);
                    t.start();
                }
            }
        "#;
        let (p, shb, report) = deadlocks(src);
        assert!(report.cycles.is_empty(), "{}", report.render(&p, &shb));
    }

    #[test]
    fn fork_join_ordering_prevents_deadlock() {
        // The two opposite-order threads never overlap: the second starts
        // after the first is joined.
        let src = r#"
            class L { }
            class T1 impl Runnable {
                field a; field b;
                method <init>(a, b) { this.a = a; this.b = b; }
                method run() {
                    a = this.a; b = this.b;
                    sync (a) { sync (b) { x = a; } }
                }
            }
            class T2 impl Runnable {
                field a; field b;
                method <init>(a, b) { this.a = a; this.b = b; }
                method run() {
                    a = this.a; b = this.b;
                    sync (b) { sync (a) { x = b; } }
                }
            }
            class Main {
                static method main() {
                    a = new L();
                    b = new L();
                    t1 = new T1(a, b);
                    t1.start();
                    join t1;
                    t2 = new T2(a, b);
                    t2.start();
                }
            }
        "#;
        let (p, shb, report) = deadlocks(src);
        assert!(report.cycles.is_empty(), "{}", report.render(&p, &shb));
    }

    #[test]
    fn three_way_cycle_is_detected() {
        // a→b (T1), b→c (T2), c→a (T3): a 3-cycle with no 2-cycle.
        let src = r#"
            class L { }
            class T1 impl Runnable {
                field x; field y;
                method <init>(x, y) { this.x = x; this.y = y; }
                method run() { x = this.x; y = this.y; sync (x) { sync (y) { q = x; } } }
            }
            class T2 impl Runnable {
                field x; field y;
                method <init>(x, y) { this.x = x; this.y = y; }
                method run() { x = this.x; y = this.y; sync (x) { sync (y) { q = x; } } }
            }
            class T3 impl Runnable {
                field x; field y;
                method <init>(x, y) { this.x = x; this.y = y; }
                method run() { x = this.x; y = this.y; sync (x) { sync (y) { q = x; } } }
            }
            class Main {
                static method main() {
                    a = new L();
                    b = new L();
                    c = new L();
                    t1 = new T1(a, b);
                    t2 = new T2(b, c);
                    t3 = new T3(c, a);
                    t1.start();
                    t2.start();
                    t3.start();
                }
            }
        "#;
        let (p, shb, report) = deadlocks(src);
        assert_eq!(report.cycles.len(), 1, "{}", report.render(&p, &shb));
        assert_eq!(report.cycles[0].locks.len(), 3);
    }

    #[test]
    fn report_renders() {
        let (p, shb, report) = deadlocks(AB_BA);
        let text = report.render(&p, &shb);
        assert!(text.contains("deadlock #1"), "{text}");
    }
}
#[cfg(test)]
mod gate_tests {
    use super::*;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    /// A 3-cycle fully serialized by a common gate lock must not be
    /// reported (the same rule the 2-cycle path applies).
    #[test]
    fn gated_three_cycle_is_not_reported() {
        let src = r#"
            class L { }
            class T1 impl Runnable {
                field g; field x; field y;
                method <init>(g, x, y) { this.g = g; this.x = x; this.y = y; }
                method run() {
                    g = this.g; x = this.x; y = this.y;
                    sync (g) { sync (x) { sync (y) { q = x; } } }
                }
            }
            class T2 impl Runnable {
                field g; field x; field y;
                method <init>(g, x, y) { this.g = g; this.x = x; this.y = y; }
                method run() {
                    g = this.g; x = this.x; y = this.y;
                    sync (g) { sync (x) { sync (y) { q = x; } } }
                }
            }
            class T3 impl Runnable {
                field g; field x; field y;
                method <init>(g, x, y) { this.g = g; this.x = x; this.y = y; }
                method run() {
                    g = this.g; x = this.x; y = this.y;
                    sync (g) { sync (x) { sync (y) { q = x; } } }
                }
            }
            class Main {
                static method main() {
                    g = new L();
                    a = new L();
                    b = new L();
                    c = new L();
                    t1 = new T1(g, a, b);
                    t2 = new T2(g, b, c);
                    t3 = new T3(g, c, a);
                    t1.start();
                    t2.start();
                    t3.start();
                }
            }
        "#;
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut o2_analysis::LocTable::new(),
        );
        let report = detect_deadlocks(&p, &shb);
        assert!(report.cycles.is_empty(), "{}", report.render(&p, &shb));
    }
}
