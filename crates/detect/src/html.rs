//! Standalone HTML race reports.
//!
//! O2 shipped as a commercial analyzer (Coderrect); a shareable report is
//! part of that product shape. [`render_html`] produces a dependency-free
//! single-file report: summary tiles, the origin table, and one card per
//! race with both access sites.

use crate::{Race, RaceReport};
use o2_analysis::MemKey;
use o2_ir::program::Program;
use o2_pta::PtaResult;
use std::fmt::Write;

/// Escapes text for HTML contexts, including single-quoted attribute
/// positions (`'` must become `&#39;`; `&apos;` is XML, not HTML 4).
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&#39;")
}

fn field_name(program: &Program, race: &Race) -> String {
    match race.key {
        MemKey::Field(_, f) => program.field_name(f).to_string(),
        MemKey::Static(c, f) => {
            format!("{}::{}", program.class(c).name, program.field_name(f))
        }
    }
}

/// Renders a complete HTML document for `report`.
#[allow(clippy::write_with_newline)]
pub fn render_html(program: &Program, pta: &PtaResult, report: &RaceReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>O2 race report</title>\n<style>\n\
         body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }}\n\
         h1 {{ font-size: 1.4rem; }}\n\
         .tiles {{ display: flex; gap: 1rem; margin: 1rem 0; }}\n\
         .tile {{ border: 1px solid #ddd; border-radius: 8px; padding: .8rem 1.2rem; }}\n\
         .tile b {{ display: block; font-size: 1.6rem; }}\n\
         table {{ border-collapse: collapse; margin: 1rem 0; }}\n\
         td, th {{ border: 1px solid #ddd; padding: .3rem .7rem; font-size: .9rem; }}\n\
         .race {{ border: 1px solid #e0b4b4; border-left: 6px solid #c0392b; \
                  border-radius: 6px; padding: .6rem 1rem; margin: .8rem 0; }}\n\
         .race h3 {{ margin: .2rem 0; font-size: 1rem; }}\n\
         code {{ background: #f6f6f6; padding: .1rem .3rem; border-radius: 4px; }}\n\
         .w {{ color: #c0392b; font-weight: 600; }}\n\
         .r {{ color: #2471a3; font-weight: 600; }}\n\
         </style></head><body>\n<h1>O2 static race report</h1>\n"
    );

    // Summary tiles.
    let _ = write!(
        out,
        "<div class=\"tiles\">\
         <div class=\"tile\"><b>{}</b>races</div>\
         <div class=\"tile\"><b>{}</b>origins</div>\
         <div class=\"tile\"><b>{}</b>pairs checked</div>\
         <div class=\"tile\"><b>{}</b>lock-pruned</div>\
         <div class=\"tile\"><b>{}</b>HB-pruned</div>\
         </div>\n",
        report.races.len(),
        pta.num_origins(),
        report.pairs_checked,
        report.lock_pruned,
        report.hb_pruned,
    );

    // Origin table.
    out.push_str("<h2>Origins</h2>\n<table><tr><th>id</th><th>kind</th><th>entry</th></tr>\n");
    for (id, data) in pta.arena.origins() {
        let m = program.method(data.entry);
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td><td><code>{}.{}</code></td></tr>\n",
            id.0,
            data.kind,
            esc(&program.class(m.class).name),
            esc(&m.name)
        );
    }
    out.push_str("</table>\n");

    // Race cards.
    out.push_str("<h2>Races</h2>\n");
    if report.races.is_empty() {
        out.push_str("<p>No races detected.</p>\n");
    }
    for (i, race) in report.races.iter().enumerate() {
        let kind = |w: bool| {
            if w {
                "<span class=\"w\">write</span>"
            } else {
                "<span class=\"r\">read</span>"
            }
        };
        let _ = write!(
            out,
            "<div class=\"race\"><h3>#{} &mdash; field <code>{}</code></h3>\
             <p>{} at <code>{}</code> (origin {})<br>\
             {} at <code>{}</code> (origin {})</p></div>\n",
            i + 1,
            esc(&field_name(program, race)),
            kind(race.a.is_write),
            esc(&program.stmt_label(race.a.stmt)),
            race.a.origin.0,
            kind(race.b.is_write),
            esc(&program.stmt_label(race.b.stmt)),
            race.b.origin.0,
        );
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect, DetectConfig};
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    #[test]
    fn html_report_contains_races_and_escapes() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    x = s.data;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let mut osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut osa.locs,
        );
        let report = detect(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &osa,
            &shb,
            &DetectConfig::o2(),
        );
        let html = render_html(&p, &pta, &report);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<b>1</b>races"), "{html}");
        assert!(html.contains("W.run"), "{html}");
        assert!(html.contains("&mdash; field <code>data</code>"), "{html}");
        // The constructor name must be escaped.
        assert!(!html.contains("<init>"), "unescaped <init>");
    }

    #[test]
    fn escape_helper() {
        assert_eq!(esc("<init> & \"x\""), "&lt;init&gt; &amp; &quot;x&quot;");
        // Single quotes break out of single-quoted attributes if left
        // unescaped.
        assert_eq!(esc("it's a='b'"), "it&#39;s a=&#39;b&#39;");
        assert_eq!(esc("&#39;"), "&amp;#39;", "no double-escaping");
    }
}
