//! # o2-detect — the O2 race detection engine
//!
//! Hybrid static happens-before + lockset race detection (§4 of the
//! paper). Candidate locations come from origin-sharing analysis (only
//! origin-shared locations with at least one writer can race); each
//! candidate pair of accesses from different origins is then checked
//! against the lockset (common lock ⇒ no race) and the SHB graph
//! (happens-before ⇒ no race).
//!
//! The three §4.1 optimizations are individually toggleable through
//! [`DetectConfig`], which is how the ablation benches measure them:
//!
//! - `integer_hb` — intra-origin HB by node-id comparison instead of graph
//!   traversal;
//! - `canonical_locksets` — interned lockset ids with a cached
//!   disjointness check instead of per-pair list intersection;
//! - `lock_region_merging` — one representative access per
//!   `(lock region, location, kind)` instead of every syntactic access.
//!
//! ```
//! use o2_ir::parser::parse;
//! use o2_ir::ProgramCtx;
//! use o2_pta::{analyze, Policy, PtaConfig};
//! use o2_analysis::run_osa;
//! use o2_shb::{build_shb, ShbConfig};
//! use o2_detect::{detect, DetectConfig};
//!
//! let program = parse(r#"
//!     class S { field data; }
//!     class W impl Runnable {
//!         field s;
//!         method <init>(s) { this.s = s; }
//!         method run() { s = this.s; s.data = s; }
//!     }
//!     class Main {
//!         static method main() {
//!             s = new S();
//!             w = new W(s);
//!             w.start();
//!             x = s.data;
//!         }
//!     }
//! "#).unwrap();
//! let ctx = ProgramCtx::solo(&program);
//! let pta = analyze(&ctx, &PtaConfig::with_policy(Policy::origin1()));
//! let mut osa = run_osa(&ctx, &pta);
//! let shb = build_shb(&ctx, &pta, &ShbConfig::default(), &mut osa.locs);
//! let report = detect(&ctx, &pta, &osa, &shb, &DetectConfig::o2());
//! assert_eq!(report.races.len(), 1); // unsynchronized write/read on S.data
//! ```

#![warn(missing_docs)]

pub mod deadlock;
pub mod html;
pub mod incr;
pub mod oversync;

pub use deadlock::{detect_deadlocks, DeadlockCycle, DeadlockReport};
pub use html::render_html;
pub use incr::{detect_incremental, detect_incremental_budgeted, DetectIncr};
pub use oversync::{find_oversync, OversyncReport, OversyncWarning};

use o2_analysis::{MemKey, OsaResult};
use o2_ir::error::{Budget, O2Error};
use o2_ir::ids::GStmt;
use o2_ir::program::Program;
use o2_ir::ProgramCtx;
use o2_pta::{OriginId, PtaResult};
use o2_shb::{AccessNode, LockSetId, LockTable, ShbGraph};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Configuration of the race detection engine.
#[derive(Clone, Debug)]
pub struct DetectConfig {
    /// §4.1 optimization 1: integer-id intra-origin happens-before.
    pub integer_hb: bool,
    /// §4.1 optimization 2: canonical lockset ids with cached disjointness.
    pub canonical_locksets: bool,
    /// §4.1 optimization 3: lock-region access merging.
    pub lock_region_merging: bool,
    /// Cache happens-before query results per position pair.
    pub hb_cache: bool,
    /// PR 6 pre-loop pruning: candidates whose accesses all share a common
    /// lock are resolved in closed form from per-location summaries
    /// instead of enumerating their pairs. Sound — every pair of such a
    /// candidate fails the lockset-disjointness test — and exact: the
    /// synthesized outcome reproduces the loop's counters bit for bit.
    pub preloop_prune: bool,
    /// Budget: maximum access pairs checked per memory location.
    pub max_pairs_per_location: usize,
    /// Wall-clock budget for the whole detection.
    pub timeout: Option<Duration>,
    /// Worker threads for the per-location pair check. `0` (the default)
    /// uses [`std::thread::available_parallelism`]. Per-location checks
    /// only read the frozen SHB graph and lockset table, so they fan out
    /// across workers; results are merged back in candidate order, making
    /// the report byte-identical for every thread count.
    pub threads: usize,
}

impl DetectConfig {
    /// The full O2 engine: all three optimizations on.
    pub fn o2() -> Self {
        DetectConfig {
            integer_hb: true,
            canonical_locksets: true,
            lock_region_merging: true,
            hb_cache: true,
            preloop_prune: true,
            max_pairs_per_location: 100_000,
            timeout: None,
            threads: 0,
        }
    }

    /// The straw-man engine described at the end of §4 (the D4-style
    /// baseline): per-pair graph traversal, per-pair lock-list
    /// intersection, no region merging, no caching.
    pub fn naive() -> Self {
        DetectConfig {
            integer_hb: false,
            canonical_locksets: false,
            lock_region_merging: false,
            hb_cache: false,
            preloop_prune: false,
            max_pairs_per_location: 100_000,
            timeout: None,
            threads: 0,
        }
    }

    /// The same configuration with an explicit worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolves the configured worker count: `0` means all available
    /// hardware parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig::o2()
    }
}

/// One side of a reported race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RaceAccess {
    /// Origin performing the access.
    pub origin: OriginId,
    /// The access statement.
    pub stmt: GStmt,
    /// `true` for writes.
    pub is_write: bool,
}

/// A reported data race: two conflicting accesses on the same location,
/// neither ordered by happens-before nor protected by a common lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// The racy memory location.
    pub key: MemKey,
    /// First access.
    pub a: RaceAccess,
    /// Second access.
    pub b: RaceAccess,
}

impl Race {
    /// `true` if both sides are writes.
    pub fn is_write_write(&self) -> bool {
        self.a.is_write && self.b.is_write
    }
}

/// Pre-loop pruning statistics (PR 6): per-LocId access summaries
/// classify every location the SHB walk touched *before* any pair is
/// enumerated, and whole classes are eliminated in closed form. Pair
/// counts are over the raw (pre-region-merge) access lists, so the stages
/// are comparable across configurations.
///
/// The taxonomy is a partition: `locations = read_only_locs +
/// single_origin_locs + common_guard_locs + candidate_locs`, and likewise
/// for pairs. Only `candidate_*` locations reach the pair loop when
/// [`DetectConfig::preloop_prune`] is on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Locations with at least one SHB-indexed access.
    pub locations: u64,
    /// Unordered access pairs before any pruning (`Σ C(n, 2)`).
    pub pre_prune_pairs: u64,
    /// Stage 1 — locations never written: no pair can conflict.
    pub read_only_locs: u64,
    /// Raw pairs eliminated by stage 1.
    pub read_only_pairs: u64,
    /// Stage 2 — locations touched by one runtime origin only (not
    /// origin-shared per OSA and no multi-instance writer).
    pub single_origin_locs: u64,
    /// Raw pairs eliminated by stage 2.
    pub single_origin_pairs: u64,
    /// Stage 3 — shared locations whose accesses all hold one common lock:
    /// every pair fails the disjointness test, so the outcome is
    /// synthesized without enumeration.
    pub common_guard_locs: u64,
    /// Raw pairs eliminated by stage 3.
    pub common_guard_pairs: u64,
    /// Locations that survive all three stages and are pair-enumerated.
    pub candidate_locs: u64,
    /// Raw pairs of the surviving candidates.
    pub candidate_pairs: u64,
}

impl PruneStats {
    /// Pairs eliminated before the pair loop, as a fraction of
    /// `pre_prune_pairs` (0.0 when nothing was indexed).
    pub fn prune_rate(&self) -> f64 {
        if self.pre_prune_pairs == 0 {
            return 0.0;
        }
        (self.pre_prune_pairs - self.candidate_pairs) as f64 / self.pre_prune_pairs as f64
    }
}

/// Statistics and results of one detection run.
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Deduplicated races (by field and unordered statement pair), in
    /// deterministic order.
    pub races: Vec<Race>,
    /// Number of access pairs examined.
    pub pairs_checked: u64,
    /// Pairs pruned because they share a lock.
    pub lock_pruned: u64,
    /// Pairs pruned by happens-before.
    pub hb_pruned: u64,
    /// Accesses merged away by lock-region merging.
    pub region_merged: u64,
    /// `true` if the time budget expired before all candidates were
    /// checked.
    pub timed_out: bool,
    /// `true` if some location hit [`DetectConfig::max_pairs_per_location`]
    /// and its remaining pairs were skipped.
    pub pairs_budget_hit: bool,
    /// Worker threads used for the pair check.
    pub threads_used: usize,
    /// Lockset-disjointness queries answered from a worker-local cache
    /// (summed over workers; only meaningful with
    /// [`DetectConfig::canonical_locksets`]).
    pub lock_cache_hits: u64,
    /// Lockset-disjointness queries computed (summed over workers).
    pub lock_cache_misses: u64,
    /// Pre-loop pruning classification of every SHB-indexed location
    /// (computed during candidate collection, so warm and cold runs agree;
    /// not serialized into [`RaceReport::to_json`]).
    pub prune: PruneStats,
    /// Wall-clock duration of detection (excluding PTA/OSA/SHB).
    pub duration: Duration,
}

impl RaceReport {
    /// Number of distinct races.
    pub fn num_races(&self) -> usize {
        self.races.len()
    }

    /// Renders the report as a JSON document (hand-rolled; the workspace
    /// keeps its dependency set minimal).
    pub fn to_json(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n  \"races\": [\n");
        for (i, r) in self.races.iter().enumerate() {
            let field = mem_key_label(program, r.key);
            let side = |a: &RaceAccess| {
                format!(
                    "{{\"kind\": \"{}\", \"at\": \"{}\", \"origin\": {}}}",
                    if a.is_write { "write" } else { "read" },
                    json_escape(&program.stmt_label(a.stmt)),
                    a.origin.0
                )
            };
            let _ = writeln!(
                out,
                "    {{\"field\": \"{}\", \"a\": {}, \"b\": {}}}{}",
                json_escape(&field),
                side(&r.a),
                side(&r.b),
                if i + 1 < self.races.len() { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "  ],\n  \"pairs_checked\": {},\n  \"lock_pruned\": {},\n  \"hb_pruned\": {},\n  \"timed_out\": {}\n}}\n",
            self.pairs_checked, self.lock_pruned, self.hb_pruned, self.timed_out
        );
        out
    }

    /// Renders a human-readable report.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, r) in self.races.iter().enumerate() {
            let field = mem_key_label(program, r.key);
            let kind = |w: bool| if w { "write" } else { "read" };
            let _ = writeln!(
                out,
                "race #{}: field `{field}`\n  {} at {} [origin {}]\n  {} at {} [origin {}]",
                i + 1,
                kind(r.a.is_write),
                program.stmt_label(r.a.stmt),
                r.a.origin.0,
                kind(r.b.is_write),
                program.stmt_label(r.b.stmt),
                r.b.origin.0,
            );
        }
        if self.races.is_empty() {
            out.push_str("no races detected\n");
        }
        out
    }
}

/// One candidate memory location with its (possibly region-merged) access
/// list and precomputed per-origin flags, ready to be checked by any
/// worker without touching the pointer-analysis result.
struct Candidate {
    key: MemKey,
    accesses: Vec<(OriginId, AccessNode)>,
    region_merged: u64,
    /// Dense `origin id → (multi_instance, allocated_only_by_that_origin)`
    /// covering every origin appearing in `accesses` (slots for origins
    /// that never touch this location stay at the `(false, false)`
    /// default, which the checks below treat as "not multi-instance").
    flags: Vec<(bool, bool)>,
    /// All accesses hold at least one common lock, so every pair is
    /// lockset-pruned: with [`DetectConfig::preloop_prune`] the outcome is
    /// synthesized in closed form instead of enumerated.
    common_guard: bool,
}

/// Per-candidate results produced by a worker, merged serially in
/// candidate order so the final report is independent of scheduling.
#[derive(Default)]
struct KeyOutcome {
    /// Races in discovery order, *before* global deduplication (the merge
    /// phase applies the cross-location `seen` filter).
    races: Vec<Race>,
    pairs_checked: u64,
    lock_pruned: u64,
    hb_pruned: u64,
    pairs_budget_hit: bool,
    timed_out: bool,
}

/// What one worker hands back to the merge phase: per-candidate outcomes
/// tagged with the candidate index, plus its local lock-cache hit/miss
/// counters.
type WorkerResult = (Vec<(usize, KeyOutcome)>, u64, u64);

/// A worker-local mirror of [`LockTable`]'s disjointness cache: the same
/// short-circuits and memoization over the *shared, frozen* table, with
/// hit/miss counters merged into the report at the end.
#[derive(Default)]
struct LocalLockCache {
    cache: HashMap<(u32, u32), bool>,
    hits: u64,
    misses: u64,
}

impl LocalLockCache {
    fn disjoint(&mut self, locks: &LockTable, a: LockSetId, b: LockSetId) -> bool {
        if a == LockSetId::EMPTY || b == LockSetId::EMPTY {
            return true;
        }
        // No `a == b` fast path: a pure-reader lockset is disjoint from
        // itself (two rdlock holders run concurrently), so self-queries
        // must go through the conflict bits like any other pair.
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&d) = self.cache.get(&key) {
            self.hits += 1;
            return d;
        }
        self.misses += 1;
        // Word-parallel intersection of `a`'s members against the union
        // of everything `b`'s members exclude — asymmetric, so rd/rd
        // pairs pass while rd/wr and wr/wr pairs on the same rwlock
        // conflict (the slice-scan `disjoint_uncached` stays as the
        // naive baseline's per-pair cost model).
        let d = !locks.set_bits(a).intersects(locks.excl_bits(b));
        self.cache.insert(key, d);
        d
    }
}

/// Runs race detection over the results of the pipeline stages.
///
/// The check is embarrassingly parallel across memory locations: phase 1
/// collects per-location access lists and per-origin flags serially (this
/// is the only part that reads the pointer analysis), phase 2 fans the
/// candidates out over [`DetectConfig::threads`] workers that share only
/// the frozen SHB graph (each worker keeps local happens-before and
/// lockset-disjointness caches), and phase 3 merges the per-candidate
/// outcomes back in candidate order. Because the merge order is fixed,
/// the report is byte-identical for every worker count (absent a
/// [`DetectConfig::timeout`], which aborts mid-flight wherever the clock
/// expires).
pub fn detect(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
) -> RaceReport {
    detect_with_budget(ctx, pta, osa, shb, config, None).0
}

/// Like [`detect`], but polls a request-scoped [`Budget`] in the
/// chunk-claim loop of the parallel phase and *aborts* with a typed
/// error when it trips — unlike [`DetectConfig::timeout`], which
/// truncates the report ([`RaceReport::timed_out`]) and keeps going.
///
/// # Errors
///
/// [`O2Error::Timeout`] when the budget's deadline has passed,
/// [`O2Error::Budget`] when its step ceiling is exhausted.
pub fn detect_budgeted(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
    budget: &Budget,
) -> Result<RaceReport, O2Error> {
    budget.check("detect entry")?;
    let b = if budget.is_unlimited() {
        None
    } else {
        Some(budget)
    };
    let (report, budget_hit) = detect_with_budget(ctx, pta, osa, shb, config, b);
    if budget_hit {
        budget.check("detect chunk claim")?;
        // The flag was set but a sub-millisecond re-check came back
        // clean; report the abort honestly anyway.
        return Err(O2Error::Timeout(
            "deadline exceeded at detect chunk claim".into(),
        ));
    }
    Ok(report)
}

fn detect_with_budget(
    ctx: &ProgramCtx<'_>,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
    budget: Option<&Budget>,
) -> (RaceReport, bool) {
    debug_assert_eq!(
        pta.program_id,
        ctx.id(),
        "detect: PtaResult from a different ProgramCtx"
    );
    debug_assert_eq!(
        shb.program_id,
        ctx.id(),
        "detect: ShbGraph from a different ProgramCtx"
    );
    debug_assert_eq!(
        osa.locs.program(),
        ctx.id(),
        "detect: OsaResult from a different ProgramCtx"
    );
    let program = ctx.program();
    let start = Instant::now();
    let deadline = config.timeout.map(|t| start + t);
    let mut report = RaceReport::default();

    // ---- phase 1: serial candidate collection ---------------------------
    let (candidates, prune) = collect_candidates(program, pta, osa, shb, config);
    report.prune = prune;

    // ---- phase 2: parallel per-candidate checking -----------------------
    let todo: Vec<usize> = (0..candidates.len()).collect();
    let budget_hit = AtomicBool::new(false);
    let (mut merged, hits, misses, out_of_time, workers) = check_candidates_parallel(
        &candidates,
        &todo,
        shb,
        config,
        deadline,
        config.effective_threads(),
        budget,
        &budget_hit,
    );
    report.lock_cache_hits = hits;
    report.lock_cache_misses = misses;

    // ---- phase 3: deterministic merge -----------------------------------
    merged.sort_unstable_by_key(|(i, _)| *i);
    // Candidate order already fixes which duplicate survives, so the dedup
    // set only needs membership, not ordering.
    let mut seen: HashSet<(MemKey, GStmt, GStmt)> = HashSet::new();
    for (i, outcome) in merged {
        report.region_merged += candidates[i].region_merged;
        report.pairs_checked += outcome.pairs_checked;
        report.lock_pruned += outcome.lock_pruned;
        report.hb_pruned += outcome.hb_pruned;
        report.pairs_budget_hit |= outcome.pairs_budget_hit;
        report.timed_out |= outcome.timed_out;
        for r in outcome.races {
            // Deduplicate by field and unordered statement pair, across
            // all locations, in candidate order.
            if seen.insert(dedup_key(r.key, r.a.stmt, r.b.stmt)) {
                report.races.push(r);
            }
        }
    }
    report.timed_out |= out_of_time;
    report.threads_used = workers;
    report
        .races
        .sort_by_key(|r| (r.key, r.a.stmt, r.b.stmt, r.a.origin.0, r.b.origin.0));
    report.duration = start.elapsed();
    (report, budget_hit.load(Ordering::Relaxed))
}

/// Phase 1 of [`detect`]: collects the candidate locations with their
/// (possibly region-merged) access lists and per-origin flags, and
/// classifies every SHB-indexed location into the pre-loop pruning
/// taxonomy. Serial — the only detection phase that reads the
/// pointer-analysis result.
fn collect_candidates(
    program: &Program,
    pta: &PtaResult,
    osa: &OsaResult,
    shb: &ShbGraph,
    config: &DetectConfig,
) -> (Vec<Candidate>, PruneStats) {
    let _ = program;

    // Multi-instance origins: an abstract origin entered from two or more
    // distinct (parent, statement) creation points stands for several
    // runtime threads (e.g. the same spawn site reached under a merged
    // context), so its accesses may race with themselves. Context-
    // sensitive policies split such origins; coarse ones rely on this
    // flag for soundness.
    let mut entry_points: HashMap<u32, BTreeSet<(u32, GStmt)>> = HashMap::new();
    for e in &shb.entry_edges {
        entry_points
            .entry(e.child.0)
            .or_default()
            .insert((e.parent.0, e.stmt));
    }
    let is_multi = |o: o2_pta::OriginId| {
        pta.origin_is_multi(o) || entry_points.get(&o.0).is_some_and(|s| s.len() >= 2)
    };
    // Allocator attribution: an object allocated *inside* a multi-instance
    // origin is fresh per runtime instance, so accesses to it from its own
    // origin never self-race. `allocated_only_by(key, o)` is true when the
    // location's object can only be allocated by origin `o` itself.
    let mut method_origins: HashMap<u32, o2_ir::util::SparseSet> = HashMap::new();
    let mut mi_by_method: HashMap<u32, Vec<o2_pta::Mi>> = HashMap::new();
    for mi in pta.reachable_mis() {
        let (m, _) = pta.mi_data(mi);
        mi_by_method.entry(m.0).or_default().push(mi);
    }
    let mut allocated_only_by = |key: &MemKey, origin: o2_pta::OriginId| -> bool {
        let MemKey::Field(obj, _) = key else {
            return false; // statics are never instance-local
        };
        let data = pta.arena.obj_data(*obj);
        let site_method = match data.site {
            o2_pta::AllocSite::Stmt { stmt, .. }
            | o2_pta::AllocSite::SpawnHandle { stmt }
            | o2_pta::AllocSite::External { stmt } => stmt.method,
        };
        // Under OPA the object's heap context IS the allocating method
        // instance's context, so the attribution is exact; other policies
        // fall back to the union over the method's instances (conservative
        // — fewer skips).
        if let Some(mi) = pta.mi_of(site_method, data.hctx) {
            let s = pta.mi_origins(mi);
            return s.len() == 1 && s.contains(origin.0);
        }
        let set = method_origins.entry(site_method.0).or_insert_with(|| {
            let mut s = o2_ir::util::SparseSet::new();
            for mi in mi_by_method.get(&site_method.0).into_iter().flatten() {
                let mut sink = Vec::new();
                s.union_into(pta.mi_origins(*mi), &mut sink);
            }
            s
        });
        set.len() == 1 && set.contains(origin.0)
    };

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut stats = PruneStats::default();
    // Walk candidate ids in canonical `MemKey` order (the order the old
    // keyed map iterated in), so region-merge representatives and the
    // phase-3 dedup retain exactly the same accesses as before the
    // dense-id refactor.
    for id in osa.locs.sorted_ids() {
        let indexed = shb.accesses_of(id);
        let raw_pairs = {
            let n = indexed.len() as u64;
            n * n.saturating_sub(1) / 2
        };
        if !indexed.is_empty() {
            stats.locations += 1;
            stats.pre_prune_pairs += raw_pairs;
        }
        let Some(entry) = osa.entry(id) else {
            // Interned by SHB only (e.g. truncated OSA scan): classify by
            // the raw access list for the taxonomy.
            if !indexed.is_empty() {
                let any_write = indexed
                    .iter()
                    .any(|&(o, idx)| shb.traces[o.0 as usize].accesses[idx as usize].is_write);
                if any_write {
                    stats.single_origin_locs += 1;
                    stats.single_origin_pairs += raw_pairs;
                } else {
                    stats.read_only_locs += 1;
                    stats.read_only_pairs += raw_pairs;
                }
            }
            continue;
        };
        let key = osa.locs.key(id);
        // Candidate locations: origin-shared per OSA, or written by a
        // multi-instance origin (self-sharing that OSA's per-origin sets
        // cannot express).
        let self_shared = entry
            .write_origins
            .iter()
            .any(|o| is_multi(o2_pta::OriginId(o)));
        if !entry.is_shared() && !self_shared {
            if !indexed.is_empty() {
                // Stage 1/2: never written, or confined to one origin.
                if entry.write_origins.is_empty() {
                    stats.read_only_locs += 1;
                    stats.read_only_pairs += raw_pairs;
                } else {
                    stats.single_origin_locs += 1;
                    stats.single_origin_pairs += raw_pairs;
                }
            }
            continue;
        }
        if indexed.is_empty() {
            continue;
        }
        // Materialize accesses, optionally merging by lock region.
        let mut region_merged = 0u64;
        let mut accesses: Vec<(OriginId, AccessNode)> = Vec::with_capacity(indexed.len());
        if config.lock_region_merging {
            let mut rep: BTreeSet<(u32, u32, bool)> = BTreeSet::new();
            for &(origin, idx) in indexed {
                let a = shb.traces[origin.0 as usize].accesses[idx as usize];
                if rep.insert((origin.0, a.region, a.is_write)) {
                    accesses.push((origin, a));
                } else {
                    region_merged += 1;
                }
            }
        } else {
            for &(origin, idx) in indexed {
                let a = shb.traces[origin.0 as usize].accesses[idx as usize];
                accesses.push((origin, a));
            }
        }
        let mut flags: Vec<(bool, bool)> = Vec::new();
        let mut flag_set: Vec<bool> = Vec::new();
        for &(origin, _) in &accesses {
            let slot = origin.0 as usize;
            if slot >= flags.len() {
                flags.resize(slot + 1, (false, false));
                flag_set.resize(slot + 1, false);
            }
            if !flag_set[slot] {
                flag_set[slot] = true;
                let multi = is_multi(origin);
                // Allocator attribution only matters for multi-instance
                // origins (it gates self-races); skip the lookup otherwise.
                let sole = multi && allocated_only_by(&key, origin);
                flags[slot] = (multi, sole);
            }
        }
        // Stage 3: a lock element held at *every* access (word-parallel
        // bitset fold over the canonical locksets) means every pair fails
        // the disjointness test — the outcome is a closed form.
        let common_guard = shb
            .locks
            .common_guard(accesses.iter().map(|(_, a)| a.lockset));
        if common_guard {
            stats.common_guard_locs += 1;
            stats.common_guard_pairs += raw_pairs;
        } else {
            stats.candidate_locs += 1;
            stats.candidate_pairs += raw_pairs;
        }
        candidates.push(Candidate {
            key,
            accesses,
            region_merged,
            flags,
            common_guard,
        });
    }
    (candidates, stats)
}

/// Phase 2 of [`detect`]: fans the candidate indices in `todo` out over
/// at most `workers` threads. Returns the per-candidate outcomes (tagged
/// with their index into `candidates`, unsorted), the summed lock-cache
/// hit/miss counters, whether the deadline expired, and the worker count
/// actually spawned (capped at the number of claimable chunks, so
/// oversubscribed small workloads don't spawn idle threads).
#[allow(clippy::too_many_arguments)]
fn check_candidates_parallel(
    candidates: &[Candidate],
    todo: &[usize],
    shb: &ShbGraph,
    config: &DetectConfig,
    deadline: Option<Instant>,
    workers: usize,
    budget: Option<&Budget>,
    budget_hit: &AtomicBool,
) -> (Vec<(usize, KeyOutcome)>, u64, u64, bool, usize) {
    let next = AtomicUsize::new(0);
    let out_of_time = AtomicBool::new(false);
    // Claim contiguous chunks of the candidate range instead of single
    // indices: one atomic per ~chunk keeps the claim overhead negligible
    // and gives each worker runs of adjacent candidates (which share trace
    // and reach-closure locality), while `workers * 8` chunks per worker
    // still balance the tail. Outcomes carry their candidate index, so the
    // claiming schedule cannot affect the merged report.
    let workers = workers.clamp(1, todo.len().max(1));
    let chunk = (todo.len() / (workers * 8)).max(1);
    // A worker beyond the chunk count would exit its first claim without
    // doing any work; don't spawn it.
    let workers = workers.min(todo.len().div_ceil(chunk).max(1));
    let run_worker = || {
        let mut hb_cache: HbCache = HashMap::new();
        let mut locks = LocalLockCache::default();
        let mut pair_tick: u64 = 0;
        let mut outcomes: Vec<(usize, KeyOutcome)> = Vec::new();
        'claim: loop {
            let begin = next.fetch_add(chunk, Ordering::Relaxed);
            if begin >= todo.len()
                || out_of_time.load(Ordering::Relaxed)
                || budget_hit.load(Ordering::Relaxed)
            {
                break;
            }
            // Request-budget checkpoint: one poll per claimed chunk (the
            // per-pair deadline checks below stay the fine-grained guard
            // for the truncation path).
            if let Some(b) = budget {
                b.step(chunk as u64);
                if b.exceeded() {
                    budget_hit.store(true, Ordering::Relaxed);
                    break;
                }
            }
            let end = (begin + chunk).min(todo.len());
            for &i in &todo[begin..end] {
                if out_of_time.load(Ordering::Relaxed) {
                    break 'claim;
                }
                let outcome = check_candidate(
                    &candidates[i],
                    shb,
                    config,
                    deadline,
                    &out_of_time,
                    &mut hb_cache,
                    &mut locks,
                    &mut pair_tick,
                );
                outcomes.push((i, outcome));
            }
        }
        (outcomes, locks.hits, locks.misses)
    };
    let worker_results: Vec<WorkerResult> = if workers <= 1 {
        vec![run_worker()]
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|_| s.spawn(run_worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("detect worker panicked"))
                .collect()
        })
    };
    let mut merged: Vec<(usize, KeyOutcome)> = Vec::with_capacity(todo.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for (outcomes, h, m) in worker_results {
        merged.extend(outcomes);
        hits += h;
        misses += m;
    }
    (
        merged,
        hits,
        misses,
        out_of_time.load(Ordering::Relaxed),
        workers,
    )
}

/// Checks every conflicting access pair of one candidate location.
/// Runs on worker threads: reads only the frozen SHB graph plus the
/// worker-local caches.
#[allow(clippy::too_many_arguments)]
fn check_candidate(
    cand: &Candidate,
    shb: &ShbGraph,
    config: &DetectConfig,
    deadline: Option<Instant>,
    out_of_time: &AtomicBool,
    hb_cache: &mut HbCache,
    locks: &mut LocalLockCache,
    pair_tick: &mut u64,
) -> KeyOutcome {
    let mut out = KeyOutcome::default();
    let key = cand.key;
    let accesses = &cand.accesses;
    let multi = |o: OriginId| cand.flags.get(o.0 as usize).is_some_and(|f| f.0);
    let sole_alloc = |o: OriginId| cand.flags.get(o.0 as usize).is_some_and(|f| f.1);

    if config.preloop_prune && cand.common_guard {
        return synthesize_common_guard(cand, config, &multi, &sole_alloc);
    }

    // Self-races of multi-instance origins: a write by an abstract
    // origin that stands for several runtime threads races with the
    // same write in another instance — unless a lock protects it or
    // the object is allocated per-instance inside the origin.
    for &(origin, a) in accesses {
        if a.is_write
            && multi(origin)
            && locks.disjoint(&shb.locks, a.lockset, a.lockset)
            && !sole_alloc(origin)
        {
            let side = RaceAccess {
                origin,
                stmt: a.stmt,
                is_write: true,
            };
            out.races.push(Race {
                key,
                a: side,
                b: side,
            });
        }
    }

    let mut pairs_here: usize = 0;
    'pairs: for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            let (oa, a) = accesses[i];
            let (ob, b) = accesses[j];
            if !a.is_write && !b.is_write {
                continue; // read-read
            }
            let same_origin = oa == ob;
            if same_origin && (!multi(oa) || sole_alloc(oa)) {
                continue; // one runtime instance, or per-instance data
            }
            pairs_here += 1;
            if pairs_here > config.max_pairs_per_location {
                out.pairs_budget_hit = true;
                break 'pairs;
            }
            out.pairs_checked += 1;
            *pair_tick += 1;
            if pair_tick.is_multiple_of(4096) {
                if let Some(d) = deadline {
                    if Instant::now() > d {
                        out.timed_out = true;
                        out_of_time.store(true, Ordering::Relaxed);
                        break 'pairs;
                    }
                }
            }
            // Lockset check.
            let disjoint = if config.canonical_locksets {
                locks.disjoint(&shb.locks, a.lockset, b.lockset)
            } else {
                shb.locks.disjoint_uncached(a.lockset, b.lockset)
            };
            if !disjoint {
                out.lock_pruned += 1;
                continue;
            }
            // Happens-before check (both directions). Two instances
            // of a multi-instance origin are mutually unordered, so
            // same-origin pairs skip it.
            let pa = (oa, a.pos);
            let pb = (ob, b.pos);
            let ordered = if same_origin {
                false
            } else if config.hb_cache {
                // One memoized reachability closure per source position
                // answers *every* sink in O(1), so a position queried
                // against k partners costs one DFS instead of k.
                let ra = hb_cache
                    .entry((oa.0, a.pos))
                    .or_insert_with(|| shb.reach_closure(pa));
                if ra.get(ob.0 as usize).is_some_and(|&m| m <= b.pos) {
                    true
                } else {
                    let rb = hb_cache
                        .entry((ob.0, b.pos))
                        .or_insert_with(|| shb.reach_closure(pb));
                    rb.get(oa.0 as usize).is_some_and(|&m| m <= a.pos)
                }
            } else {
                hb(shb, pa, pb, config.integer_hb) || hb(shb, pb, pa, config.integer_hb)
            };
            if ordered {
                out.hb_pruned += 1;
                continue;
            }
            out.races.push(Race {
                key,
                a: RaceAccess {
                    origin: oa,
                    stmt: a.stmt,
                    is_write: a.is_write,
                },
                b: RaceAccess {
                    origin: ob,
                    stmt: b.stmt,
                    is_write: b.is_write,
                },
            });
        }
    }
    out
}

/// Closed-form outcome for a common-guard candidate: every enumerable
/// pair shares the common lock, so the loop would count it once as
/// `pairs_checked` and once as `lock_pruned` and find nothing — and the
/// self-race scan finds nothing either, because [`LockTable::common_guard`]
/// only accepts *self-excluding* guards (a shared rdlock does not count),
/// and a lockset holding one is never self-disjoint. Reproduces the
/// loop's counters exactly,
/// including the per-location pair budget:
///
/// `P = [C(n,2) − C(r,2)] − Σ_{o : !multi(o) ∨ sole_alloc(o)} [C(n_o,2) − C(r_o,2)]`
///
/// where `n`/`r` count accesses/reads and `n_o`/`r_o` count them per
/// origin (the subtracted term is the same-origin skip for
/// single-instance or per-instance-allocating origins; read-read pairs
/// are never counted).
fn synthesize_common_guard(
    cand: &Candidate,
    config: &DetectConfig,
    multi: &impl Fn(OriginId) -> bool,
    sole_alloc: &impl Fn(OriginId) -> bool,
) -> KeyOutcome {
    let c2 = |n: u64| n * n.saturating_sub(1) / 2;
    let (mut n, mut r) = (0u64, 0u64);
    let mut per_origin: HashMap<u32, (u64, u64)> = HashMap::new();
    for &(origin, a) in &cand.accesses {
        n += 1;
        let slot = per_origin.entry(origin.0).or_default();
        slot.0 += 1;
        if !a.is_write {
            r += 1;
            slot.1 += 1;
        }
    }
    let mut countable = c2(n) - c2(r);
    for (&o, &(no, ro)) in &per_origin {
        let o = OriginId(o);
        if !multi(o) || sole_alloc(o) {
            countable -= c2(no) - c2(ro);
        }
    }
    let budget = config.max_pairs_per_location as u64;
    let pairs_checked = countable.min(budget);
    KeyOutcome {
        races: Vec::new(),
        pairs_checked,
        lock_pruned: pairs_checked,
        hb_pruned: 0,
        pairs_budget_hit: countable > budget,
        timed_out: false,
    }
}

/// Renders a memory location as `field` or `Class::field` for reports.
pub fn mem_key_label(program: &Program, key: MemKey) -> String {
    match key {
        MemKey::Field(_, f) => program.field_name(f).to_string(),
        MemKey::Static(c, f) => {
            format!("{}::{}", program.class(c).name, program.field_name(f))
        }
    }
}

/// Memoized reachability closures: `(origin, pos)` → the per-origin
/// minimum reachable positions from that node
/// ([`ShbGraph::reach_closure`]). One closure answers every
/// happens-before query with that source in O(1), replacing the old
/// per-(source, sink) boolean cache.
type HbCache = HashMap<(u32, u32), Vec<u32>>;

/// Minimal JSON string escaping.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn hb(shb: &ShbGraph, a: (OriginId, u32), b: (OriginId, u32), integer: bool) -> bool {
    if integer {
        shb.happens_before(a, b)
    } else {
        shb.happens_before_naive(a, b)
    }
}

/// Dedup key: races are counted per (location-up-to-field, unordered
/// statement pair), so the same code racing over many abstract objects is
/// reported once — matching how the paper counts reported races.
fn dedup_key(key: MemKey, s1: GStmt, s2: GStmt) -> (MemKey, GStmt, GStmt) {
    let norm_key = match key {
        // Keep the field but drop the object so identical code pairs on
        // sibling objects collapse.
        MemKey::Field(_, f) => MemKey::Field(o2_pta::ObjId(u32::MAX), f),
        s @ MemKey::Static(..) => s,
    };
    if s1 <= s2 {
        (norm_key, s1, s2)
    } else {
        (norm_key, s2, s1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    fn detect_races(src: &str, policy: Policy, cfg: &DetectConfig) -> (o2_ir::Program, RaceReport) {
        let p = parse(src).unwrap();
        o2_ir::validate::assert_valid(&p);
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(policy),
        );
        let mut osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut osa.locs,
        );
        let report = detect(&o2_ir::ProgramCtx::solo(&p), &pta, &osa, &shb, cfg);
        (p, report)
    }

    const RACY: &str = r#"
        class S { field data; }
        class W impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() { s = this.s; s.data = s; }
        }
        class Main {
            static method main() {
                s = new S();
                w = new W(s);
                w.start();
                x = s.data;
            }
        }
    "#;

    #[test]
    fn detects_simple_race() {
        let (_, r) = detect_races(RACY, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 1);
        assert!(!r.races[0].is_write_write());
    }

    #[test]
    fn naive_engine_agrees_with_o2_engine() {
        let (_, r1) = detect_races(RACY, Policy::origin1(), &DetectConfig::o2());
        let (_, r2) = detect_races(RACY, Policy::origin1(), &DetectConfig::naive());
        assert_eq!(r1.races, r2.races);
    }

    #[test]
    fn join_establishes_order() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    join w;
                    x = s.data;
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 0, "join orders the read after the write");
        assert!(r.hb_pruned >= 1);
    }

    #[test]
    fn common_lock_prevents_race() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; sync (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    w.start();
                    sync (s) { x = s.data; }
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 0);
        assert!(r.lock_pruned >= 1);
    }

    #[test]
    fn different_locks_do_not_protect() {
        let src = r#"
            class S { field data; }
            class L { }
            class W impl Runnable {
                field s; field l;
                method <init>(s, l) { this.s = s; this.l = l; }
                method run() {
                    s = this.s; l = this.l;
                    sync (l) { s.data = s; }
                }
            }
            class Main {
                static method main() {
                    s = new S();
                    l1 = new L();
                    l2 = new L();
                    w = new W(s, l1);
                    w.start();
                    sync (l2) { x = s.data; }
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 1, "distinct locks do not order accesses");
    }

    #[test]
    fn write_write_between_two_threads() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w1 = new W(s);
                    w2 = new W(s);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 1);
        assert!(r.races[0].is_write_write());
    }

    #[test]
    fn events_on_same_dispatcher_do_not_race() {
        let src = r#"
            class G { field st; }
            class H impl EventHandler {
                method handleEvent(e) { G::st = e; }
            }
            class Main {
                static method main() {
                    h1 = new H();
                    h2 = new H();
                    e = new G();
                    h1.handleEvent(e);
                    h2.handleEvent(e);
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 0, "§4.2: one global lock per dispatcher");
    }

    #[test]
    fn event_vs_thread_races() {
        // The hallmark of the paper: a race between an event handler and a
        // thread (missed when events and threads are considered
        // separately).
        let src = r#"
            class G { field st; }
            class H impl EventHandler {
                method handleEvent(e) { G::st = e; }
            }
            class W impl Runnable {
                method run() { x = G::st; }
            }
            class Main {
                static method main() {
                    h = new H();
                    e = new G();
                    w = new W();
                    w.start();
                    h.handleEvent(e);
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 1, "threads meet events");
    }

    #[test]
    fn loop_spawned_threads_race_with_each_other() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    loop { w = new W(s); w.start(); }
                }
            }
        "#;
        let (_, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 1, "loop duplication exposes self-races");
        assert!(r.races[0].is_write_write());
    }

    #[test]
    fn opa_reports_fewer_false_races_than_insensitive() {
        // Per-thread state conflated by 0-ctx looks shared and racy; OPA
        // proves it origin-local (the Table 8 precision story).
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                method run() { s = new S(); s.data = s; x = s.data; }
            }
            class Main {
                static method main() {
                    w1 = new W();
                    w2 = new W();
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (_, r_opa) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        let (_, r_0) = detect_races(src, Policy::insensitive(), &DetectConfig::o2());
        assert_eq!(r_opa.num_races(), 0, "OPA: thread-local state");
        assert!(r_0.num_races() >= 1, "0-ctx: false positive");
    }

    #[test]
    fn region_merging_reduces_pairs_but_not_races() {
        let src = r#"
            class S { field a; field b; field c; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() {
                    s = this.s;
                    s.a = s; s.a = s; s.a = s; s.a = s;
                }
            }
            class Main {
                static method main() {
                    s = new S();
                    w1 = new W(s);
                    w2 = new W(s);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (_, merged) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        let mut no_merge = DetectConfig::o2();
        no_merge.lock_region_merging = false;
        let (_, unmerged) = detect_races(src, Policy::origin1(), &no_merge);
        // Merging is sound on *locations*: the same set of racy locations
        // is found, with redundant per-statement pairs collapsed to one
        // representative (the point of the optimization).
        let keys = |r: &RaceReport| {
            r.races
                .iter()
                .map(|x| x.key)
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(keys(&merged), keys(&unmerged), "merging is sound");
        assert!(!merged.races.is_empty());
        assert!(merged.races.len() <= unmerged.races.len());
        assert!(
            merged.pairs_checked < unmerged.pairs_checked,
            "merging reduces checked pairs: {} vs {}",
            merged.pairs_checked,
            unmerged.pairs_checked
        );
        assert!(merged.region_merged > 0);
    }

    #[test]
    fn report_renders() {
        let (p, r) = detect_races(RACY, Policy::origin1(), &DetectConfig::o2());
        let text = r.render(&p);
        assert!(text.contains("race #1"), "{text}");
        assert!(text.contains("data"), "{text}");
    }

    #[test]
    fn empty_program_has_no_races() {
        let src = "class Main { static method main() { } }";
        let (p, r) = detect_races(src, Policy::origin1(), &DetectConfig::o2());
        assert_eq!(r.num_races(), 0);
        assert!(r.render(&p).contains("no races"));
    }
}

#[cfg(test)]
mod sync_semantics_tests {
    use super::*;
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    fn races(src: &str, cfg: &DetectConfig) -> RaceReport {
        let p = parse(src).unwrap();
        o2_ir::validate::assert_valid(&p);
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let mut osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut osa.locs,
        );
        detect(&o2_ir::ProgramCtx::solo(&p), &pta, &osa, &shb, cfg)
    }

    /// Every fixture must agree across the o2 engine, the naive engine,
    /// and preloop_prune on/off — the ISSUE's determinism bar.
    fn races_all_engines(src: &str) -> RaceReport {
        let o2 = races(src, &DetectConfig::o2());
        let naive = races(src, &DetectConfig::naive());
        assert_eq!(o2.races, naive.races, "naive engine disagrees");
        let mut no_prune = DetectConfig::o2();
        no_prune.preloop_prune = false;
        let unpruned = races(src, &no_prune);
        assert_eq!(o2.races, unpruned.races, "preloop_prune changes races");
        o2
    }

    // ---- reader-writer locks -------------------------------------------

    /// Positive: a write under only the read side of an rwlock races with
    /// the same write in another reader (rdlock does not exclude rdlock).
    #[test]
    fn write_under_rdlock_races_with_other_reader() {
        let src = r#"
            class S { field hits; }
            class R impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwread (s) { s.hits = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    r1 = new R(s);
                    r2 = new R(s);
                    r1.start();
                    r2.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
        assert!(r.races[0].is_write_write());
    }

    /// Negative: a read under rdlock is excluded by a write under wrlock
    /// on the same lock object.
    #[test]
    fn rdlock_read_vs_wrlock_write_is_protected() {
        let src = r#"
            class S { field data; }
            class R impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwread (s) { x = s.data; } }
            }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwwrite (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    r = new R(s);
                    w = new W(s);
                    r.start();
                    w.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
        assert!(r.lock_pruned >= 1);
    }

    /// Negative: two writers under wrlock are mutually exclusive.
    #[test]
    fn wrlock_writers_are_exclusive() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwwrite (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w1 = new W(s);
                    w2 = new W(s);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }

    /// Positive (the LocalLockCache fix): a loop-spawned origin writing
    /// under only rdlock must self-race — a pure-reader lockset is
    /// disjoint from itself, so the removed `a == b` fast path would have
    /// silently suppressed this.
    #[test]
    fn loop_spawned_writes_under_rdlock_self_race() {
        let src = r#"
            class S { field hits; }
            class R impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwread (s) { s.hits = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    r = new R(s);
                    loop { r.start(); }
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
        assert!(r.races[0].is_write_write());
    }

    /// Negative counterpart: the same loop-spawned shape under wrlock is
    /// clean (instances exclude each other).
    #[test]
    fn loop_spawned_writes_under_wrlock_are_clean() {
        let src = r#"
            class S { field hits; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; rwwrite (s) { s.hits = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    loop { w.start(); }
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }

    // ---- condition variables -------------------------------------------

    /// Negative: notify → wait-return orders a pre-notify write before a
    /// post-wait read even when neither access holds a lock.
    #[test]
    fn notify_wait_edge_orders_handoff() {
        let src = r#"
            class Q { field payload; }
            class Cond { }
            class Producer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    q.payload = q;
                    sync (m) { notify c; }
                }
            }
            class Consumer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    sync (m) { wait (c, m); }
                    x = q.payload;
                }
            }
            class Main {
                static method main() {
                    q = new Q();
                    m = new Cond();
                    c = new Cond();
                    p = new Producer(q, m, c);
                    w = new Consumer(q, m, c);
                    p.start();
                    w.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
        assert!(r.hb_pruned >= 1);
    }

    /// Positive: a write issued *after* the notify is not ordered against
    /// the post-wait side — the edge runs notify → wait-return only.
    #[test]
    fn post_notify_write_still_races() {
        let src = r#"
            class Q { field stat; }
            class Cond { }
            class Producer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    sync (m) { notify c; }
                    q.stat = q;
                }
            }
            class Consumer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    sync (m) { wait (c, m); }
                    q.stat = q;
                }
            }
            class Main {
                static method main() {
                    q = new Q();
                    m = new Cond();
                    c = new Cond();
                    p = new Producer(q, m, c);
                    w = new Consumer(q, m, c);
                    p.start();
                    w.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
        assert!(r.races[0].is_write_write());
    }

    /// Positive: a notify on a *different* condition variable provides no
    /// ordering — the handoff of `notify_wait_edge_orders_handoff` with
    /// mismatched condvars races.
    #[test]
    fn unrelated_condvar_gives_no_order() {
        let src = r#"
            class Q { field payload; }
            class Cond { }
            class Producer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    q.payload = q;
                    sync (m) { notify c; }
                }
            }
            class Consumer impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    sync (m) { wait (c, m); }
                    x = q.payload;
                }
            }
            class Main {
                static method main() {
                    q = new Q();
                    m = new Cond();
                    c1 = new Cond();
                    c2 = new Cond();
                    p = new Producer(q, m, c1);
                    w = new Consumer(q, m, c2);
                    p.start();
                    w.start();
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
    }

    /// The wait splits its critical section: two accesses in the same
    /// `sync` block on either side of a `wait` are in different lock
    /// regions, so region merging must not collapse them.
    #[test]
    fn wait_splits_the_critical_section() {
        let src = r#"
            class Q { field a; }
            class Cond { }
            class W impl Runnable {
                field q; field m; field c;
                method <init>(q, m, c) { this.q = q; this.m = m; this.c = c; }
                method run() {
                    q = this.q; m = this.m; c = this.c;
                    sync (m) { q.a = q; wait (c, m); q.a = q; }
                }
            }
            class Main {
                static method main() {
                    q = new Q();
                    m = new Cond();
                    c = new Cond();
                    w = new W(q, m, c);
                    loop { w.start(); }
                }
            }
        "#;
        // Both writes hold the mutex, so instances never race — but the
        // two writes must survive region merging as separate accesses.
        let r = races(src, &DetectConfig::o2());
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
        assert_eq!(r.region_merged, 0, "wait must split the lock region");
    }

    // ---- async-executor origins ----------------------------------------

    /// Negative: tasks queued on the same single-threaded executor are
    /// serialized by the executor itself.
    #[test]
    fn same_single_threaded_executor_tasks_do_not_race() {
        let src = r#"
            class S { field data; }
            class T {
                static method taskA(s) { s.data = s; }
                static method taskB(s) { s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    spawn task(0) T::taskA(s);
                    spawn task(0) T::taskB(s);
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }

    /// Positive: the same two tasks on *different* executors race.
    #[test]
    fn tasks_on_different_executors_race() {
        let src = r#"
            class S { field data; }
            class T {
                static method taskA(s) { s.data = s; }
                static method taskB(s) { s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    spawn task(0) T::taskA(s);
                    spawn task(1) T::taskB(s);
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
    }

    /// Positive: a multi-worker executor provides no serialization — its
    /// tasks race with each other.
    #[test]
    fn multi_worker_executor_tasks_race() {
        let src = r#"
            class S { field data; }
            class T {
                static method taskA(s) { s.data = s; }
                static method taskB(s) { s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    spawn task(0, 4) T::taskA(s);
                    spawn task(0, 4) T::taskB(s);
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
    }

    /// Positive: the paper's hallmark extended to async — a task on a
    /// single-threaded executor still races with a plain thread.
    #[test]
    fn task_vs_thread_races() {
        let src = r#"
            class S { field data; }
            class T {
                static method onIo(s) { x = s.data; }
                static method work(s) { s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    spawn task(0) T::onIo(s);
                    spawn thread T::work(s);
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
    }

    /// An await point bumps the lock region (handler boundary) without
    /// destroying the executor's serialization.
    #[test]
    fn await_points_keep_executor_serialization() {
        let src = r#"
            class S { field data; }
            class T {
                static method taskA(s) { s.data = s; await; s.data = s; }
                static method taskB(s) { await; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    spawn task(0) T::taskA(s);
                    spawn task(0) T::taskB(s);
                }
            }
        "#;
        let r = races_all_engines(src);
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }
}

#[cfg(test)]
mod multi_instance_tests {
    use super::*;
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    fn races(src: &str, policy: Policy) -> RaceReport {
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(policy),
        );
        let mut osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut osa.locs,
        );
        detect(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &osa,
            &shb,
            &DetectConfig::o2(),
        )
    }

    /// A thread object allocated once but started in a loop stands for
    /// arbitrarily many concurrent activations: its unprotected writes to
    /// externally allocated state must self-race.
    #[test]
    fn started_in_loop_origin_self_races() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; s.data = s; }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    loop { w.start(); }
                }
            }
        "#;
        let r = races(src, Policy::origin1());
        assert_eq!(r.num_races(), 1, "{:?}", r.races);
        assert!(r.races[0].is_write_write());
    }

    /// The same shape with a lock is race-free (instances share the lock).
    #[test]
    fn started_in_loop_with_lock_is_clean() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() { s = this.s; sync (s) { s.data = s; } }
            }
            class Main {
                static method main() {
                    s = new S();
                    w = new W(s);
                    loop { w.start(); }
                }
            }
        "#;
        let r = races(src, Policy::origin1());
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }

    /// Per-instance allocations inside a multi-instance origin never
    /// self-race (each runtime thread gets a fresh object).
    #[test]
    fn per_instance_allocations_do_not_self_race() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                method run() { s = new S(); s.data = s; }
            }
            class Main {
                static method main() {
                    w = new W();
                    loop { w.start(); }
                }
            }
        "#;
        let r = races(src, Policy::origin1());
        assert_eq!(r.num_races(), 0, "{:?}", r.races);
    }
}
