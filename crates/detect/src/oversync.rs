//! Over-synchronization detection: locks that only ever guard
//! origin-local data.
//!
//! §3 of the paper lists over-synchronization as a direct client of
//! OPA/OSA beyond race detection: a synchronized region whose every
//! guarded access targets memory that OSA proves origin-local is pure
//! overhead — the lock can be removed (the classic "synchronization
//! elimination" enabled by precise sharing information).
//!
//! The analysis is per acquisition *site*: a site is over-synchronizing if
//! across all origins and all lock regions it opens, no guarded access
//! ever touches an origin-shared location.

use o2_analysis::OsaResult;
use o2_ir::ids::GStmt;
use o2_ir::program::Program;
use o2_shb::ShbGraph;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// One over-synchronization warning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OversyncWarning {
    /// The acquisition site (a `MonitorEnter` or synchronized-method
    /// entry).
    pub site: GStmt,
    /// Number of guarded accesses observed (all origin-local).
    pub guarded_accesses: usize,
}

/// The over-synchronization report.
#[derive(Clone, Debug, Default)]
pub struct OversyncReport {
    /// Warnings, ordered by site.
    pub warnings: Vec<OversyncWarning>,
    /// Acquisition sites that do guard shared data (for contrast).
    pub useful_sites: usize,
    /// Wall-clock duration.
    pub duration: Duration,
}

impl OversyncReport {
    /// Renders a human-readable report.
    pub fn render(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, w) in self.warnings.iter().enumerate() {
            let _ = writeln!(
                out,
                "over-synchronization #{}: lock at {} guards only origin-local \
                 data ({} accesses)",
                i + 1,
                program.stmt_label(w.site),
                w.guarded_accesses,
            );
        }
        if self.warnings.is_empty() {
            out.push_str("no over-synchronization detected\n");
        }
        out
    }
}

/// Finds acquisition sites that only guard origin-local data.
pub fn find_oversync(program: &Program, osa: &OsaResult, shb: &ShbGraph) -> OversyncReport {
    let start = Instant::now();
    let _ = program;
    let shared_keys: BTreeSet<_> = osa.shared_entries().map(|(k, _)| *k).collect();
    // site → (guards_shared, #accesses)
    let mut sites: BTreeMap<GStmt, (bool, usize)> = BTreeMap::new();
    for trace in &shb.traces {
        for acq in &trace.acquires {
            let end = if acq.released_pos == u32::MAX {
                u32::MAX
            } else {
                acq.released_pos
            };
            let entry = sites.entry(acq.stmt).or_insert((false, 0));
            for a in &trace.accesses {
                if a.pos > acq.pos && a.pos < end {
                    entry.1 += 1;
                    if shared_keys.contains(&a.key) {
                        entry.0 = true;
                    }
                }
            }
        }
    }
    let mut warnings = Vec::new();
    let mut useful_sites = 0usize;
    for (site, (guards_shared, accesses)) in sites {
        if guards_shared {
            useful_sites += 1;
        } else if accesses > 0 {
            warnings.push(OversyncWarning {
                site,
                guarded_accesses: accesses,
            });
        }
    }
    OversyncReport {
        warnings,
        useful_sites,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2_analysis::run_osa;
    use o2_ir::parser::parse;
    use o2_pta::{analyze, Policy, PtaConfig};
    use o2_shb::{build_shb, ShbConfig};

    fn oversync(src: &str) -> (o2_ir::Program, OversyncReport) {
        let p = parse(src).unwrap();
        let pta = analyze(
            &o2_ir::ProgramCtx::solo(&p),
            &PtaConfig::with_policy(Policy::origin1()),
        );
        let mut osa = run_osa(&o2_ir::ProgramCtx::solo(&p), &pta);
        let shb = build_shb(
            &o2_ir::ProgramCtx::solo(&p),
            &pta,
            &ShbConfig::default(),
            &mut osa.locs,
        );
        let report = find_oversync(&p, &osa, &shb);
        (p, report)
    }

    #[test]
    fn lock_on_thread_local_data_is_flagged() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                method run() {
                    s = new S();
                    sync (s) { s.data = s; }   // s never escapes this thread
                }
            }
            class Main {
                static method main() {
                    w1 = new W();
                    w2 = new W();
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (p, report) = oversync(src);
        assert_eq!(report.warnings.len(), 1, "{}", report.render(&p));
        assert_eq!(report.useful_sites, 0);
    }

    #[test]
    fn lock_on_shared_data_is_useful() {
        let src = r#"
            class S { field data; }
            class W impl Runnable {
                field s;
                method <init>(s) { this.s = s; }
                method run() {
                    s = this.s;
                    sync (s) { s.data = s; }   // genuinely shared
                }
            }
            class Main {
                static method main() {
                    s = new S();
                    w1 = new W(s);
                    w2 = new W(s);
                    w1.start();
                    w2.start();
                }
            }
        "#;
        let (p, report) = oversync(src);
        assert!(report.warnings.is_empty(), "{}", report.render(&p));
        assert_eq!(report.useful_sites, 1);
    }

    #[test]
    fn empty_regions_are_not_flagged() {
        let src = r#"
            class S { }
            class Main {
                static method main() {
                    s = new S();
                    sync (s) { }
                }
            }
        "#;
        let (p, report) = oversync(src);
        assert!(report.warnings.is_empty(), "{}", report.render(&p));
    }

    #[test]
    fn single_origin_statics_are_oversynchronized() {
        // The paper's example of OSA precision: a static used by only one
        // origin. Locking around it is unnecessary.
        let src = r#"
            class G { }
            class W impl Runnable { method run() { } }
            class Main {
                static method main() {
                    g = new G();
                    sync (g) { G::cfg = g; }
                    w = new W();
                    w.start();
                }
            }
        "#;
        let (p, report) = oversync(src);
        assert_eq!(report.warnings.len(), 1, "{}", report.render(&p));
    }
}
