//! Fixture tests for the deadlock and over-synchronization clients.
//!
//! These pin the externally visible behavior of `detect_deadlocks` and
//! `find_oversync` — gate-lock suppression on both sides, and the
//! origin-local redundant-sync warning — so the precision-pipeline
//! refactor (which re-hosts both checks as passes) cannot change their
//! results silently.

use o2_analysis::run_osa;
use o2_detect::{detect_deadlocks, find_oversync, DeadlockReport, OversyncReport};
use o2_ir::parser::parse;
use o2_ir::program::Program;
use o2_pta::{analyze, Policy, PtaConfig};
use o2_shb::{build_shb, ShbConfig, ShbGraph};

fn run(src: &str) -> (Program, ShbGraph, DeadlockReport, OversyncReport) {
    let p = parse(src).unwrap();
    let ctx = o2_ir::ProgramCtx::solo(&p);
    let pta = analyze(&ctx, &PtaConfig::with_policy(Policy::origin1()));
    let mut osa = run_osa(&ctx, &pta);
    let shb = build_shb(&ctx, &pta, &ShbConfig::default(), &mut osa.locs);
    let deadlocks = detect_deadlocks(&p, &shb);
    let oversync = find_oversync(&p, &osa, &shb);
    (p, shb, deadlocks, oversync)
}

/// AB-BA where `T2`'s reversed acquisition is wrapped in a gate lock
/// only when the template's `GATE2` marker is replaced by a real `sync`.
fn ab_ba(t1_gated: bool, t2_gated: bool) -> String {
    let body = |order: &str, gated: bool| {
        let inner = match order {
            "ab" => "sync (a) { sync (b) { x = a; } }",
            _ => "sync (b) { sync (a) { x = b; } }",
        };
        if gated {
            format!("sync (g) {{ {inner} }}")
        } else {
            inner.to_string()
        }
    };
    format!(
        r#"
        class L {{ }}
        class T1 impl Runnable {{
            field g; field a; field b;
            method <init>(g, a, b) {{ this.g = g; this.a = a; this.b = b; }}
            method run() {{
                g = this.g; a = this.a; b = this.b;
                {t1}
            }}
        }}
        class T2 impl Runnable {{
            field g; field a; field b;
            method <init>(g, a, b) {{ this.g = g; this.a = a; this.b = b; }}
            method run() {{
                g = this.g; a = this.a; b = this.b;
                {t2}
            }}
        }}
        class Main {{
            static method main() {{
                g = new L();
                a = new L();
                b = new L();
                t1 = new T1(g, a, b);
                t2 = new T2(g, a, b);
                t1.start();
                t2.start();
            }}
        }}
        "#,
        t1 = body("ab", t1_gated),
        t2 = body("ba", t2_gated),
    )
}

#[test]
fn ungated_ab_ba_deadlocks() {
    let (p, shb, deadlocks, _) = run(&ab_ba(false, false));
    assert_eq!(deadlocks.cycles.len(), 1, "{}", deadlocks.render(&p, &shb));
    assert_eq!(deadlocks.cycles[0].locks.len(), 2);
}

#[test]
fn common_gate_lock_suppresses_the_cycle() {
    // Both threads serialize their nested acquisitions under `g`: the
    // interleaving that deadlocks cannot happen.
    let (p, shb, deadlocks, _) = run(&ab_ba(true, true));
    assert!(
        deadlocks.cycles.is_empty(),
        "{}",
        deadlocks.render(&p, &shb)
    );
}

#[test]
fn one_sided_gate_lock_does_not_help() {
    // Only T1 takes the gate: T2 can still interleave into the window
    // and the cycle must be reported.
    let (p, shb, deadlocks, _) = run(&ab_ba(true, false));
    assert_eq!(deadlocks.cycles.len(), 1, "{}", deadlocks.render(&p, &shb));
}

#[test]
fn origin_local_sync_is_redundant() {
    // Each worker locks an object it allocated itself and never
    // publishes; the region guards only origin-local data.
    let src = r#"
        class S { field data; }
        class W impl Runnable {
            method run() {
                s = new S();
                sync (s) { s.data = s; }
            }
        }
        class Main {
            static method main() {
                w1 = new W(); w1.start();
                w2 = new W(); w2.start();
            }
        }
    "#;
    let (p, _, _, oversync) = run(src);
    assert_eq!(oversync.warnings.len(), 1, "{}", oversync.render(&p));
    assert_eq!(oversync.useful_sites, 0);
    assert!(oversync.warnings[0].guarded_accesses >= 1);
}

#[test]
fn shared_sync_is_not_flagged() {
    // The same region guarding an object both workers reach is useful
    // synchronization, not over-sync.
    let src = r#"
        class S { field data; }
        class W impl Runnable {
            field s;
            method <init>(s) { this.s = s; }
            method run() {
                s = this.s;
                sync (s) { s.data = s; }
            }
        }
        class Main {
            static method main() {
                s = new S();
                w1 = new W(s); w1.start();
                w2 = new W(s); w2.start();
            }
        }
    "#;
    let (p, _, _, oversync) = run(src);
    assert!(oversync.warnings.is_empty(), "{}", oversync.render(&p));
    assert_eq!(oversync.useful_sites, 1);
}
