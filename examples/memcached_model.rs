//! The Memcached slab-reassign bug (§5.4): an event handler reads the
//! slab class table without the lock that the worker thread holds — a
//! race only visible when threads and events are analyzed together.
//!
//! Run with: `cargo run --example memcached_model`

use o2::prelude::*;

fn main() {
    let model = o2_workloads::realbugs::memcached();
    println!("== {} ==", model.name);
    println!("{}\n", model.description);

    let report = O2Builder::new().build().analyze(&model.program);
    println!(
        "O2 found {} races (paper: {} confirmed):\n",
        report.num_races(),
        model.expected_races
    );
    print!("{}", report.races.render(&model.program));

    // Show which origin kinds participate in each race — the point of the
    // case study is the thread/event combination.
    println!("race participants:");
    for (i, race) in report.races.races.iter().enumerate() {
        let kind = |o: o2_pta::OriginId| report.pta.arena.origin_data(o).kind;
        println!(
            "  race #{}: {} vs {}",
            i + 1,
            kind(race.a.origin),
            kind(race.b.origin)
        );
    }

    // What a thread-only view would see: strip the event entry points and
    // re-analyze. The handler becomes a synchronous call and every race
    // disappears — exactly how tools that ignore events miss these bugs.
    let mut thread_only = model.program.clone();
    thread_only.entry_config.event_entries.clear();
    let blind = O2Builder::new().build().analyze(&thread_only);
    println!(
        "\nwithout thread/event unification: {} races (all {} missed)",
        blind.num_races(),
        report.num_races()
    );

    // The developers' fix: take the slabs lock in the reassign path.
    let fixed = o2_ir::parser::parse(
        r#"
        class SlabClass { field slabs; }
        class G { }
        class Lock { }
        class Reassign impl EventHandler {
            field sc; field lk;
            method <init>(sc, lk) { this.sc = sc; this.lk = lk; }
            method handleEvent(e) {
                sc = this.sc;
                lk = this.lk;
                sync (lk) { x = sc.slabs; }
            }
        }
        class Worker impl Runnable {
            field sc; field lk;
            method <init>(sc, lk) { this.sc = sc; this.lk = lk; }
            method run() {
                sc = this.sc;
                lk = this.lk;
                sync (lk) { sc.slabs = sc; }
            }
        }
        class Main {
            static method main() {
                sc = new SlabClass();
                lk = new Lock();
                r = new Reassign(sc, lk);
                ev = new G();
                r.handleEvent(ev);
                w = new Worker(sc, lk);
                w.start();
            }
        }
    "#,
    )
    .expect("fixed model parses");
    let after = O2Builder::new().build().analyze(&fixed);
    println!("after the developers' fix: {} races on slabs", {
        let slabs = fixed.field_by_name("slabs").unwrap();
        after
            .races
            .races
            .iter()
            .filter(|r| matches!(r.key, MemKey::Field(_, f) if f == slabs))
            .count()
    });
}
