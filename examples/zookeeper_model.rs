//! The ZooKeeper ephemerals race (ZOOKEEPER-3819, §5.4): two server
//! threads handle a create-node request and a deserialize request for the
//! same session; one adds to the session list under `synchronized`, the
//! other without — O2 reports the single confirmed race.
//!
//! Run with: `cargo run --example zookeeper_model`

use o2::prelude::*;

fn main() {
    let model = o2_workloads::realbugs::zookeeper();
    println!("== {} ==", model.name);
    println!("{}\n", model.description);

    let report = O2Builder::new().build().analyze(&model.program);
    println!(
        "O2 found {} race (paper: {} confirmed):\n",
        report.num_races(),
        model.expected_races
    );
    print!("{}", report.races.render(&model.program));

    // Why the lockset check fires: one side holds the list monitor, the
    // other holds nothing.
    for race in &report.races.races {
        let side = |o: o2_pta::OriginId, pos_hint: &str| {
            let kind = report.pta.arena.origin_data(o).kind;
            format!("origin {} ({kind}) {pos_hint}", o.0)
        };
        println!(
            "\n  {} vs {} — no common lock, no happens-before",
            side(race.a.origin, "locked add"),
            side(race.b.origin, "unlocked add"),
        );
    }

    // The distributed-system preset view (Table 9 shape): the zookeeper
    // preset has 40 origins like the paper's 40 threads + 88 events run.
    let preset = o2_workloads::preset_by_name("zookeeper").unwrap();
    let w = preset.generate();
    let big = O2Builder::new().build().analyze(&w.program);
    println!(
        "\nzookeeper preset: {} origins (paper #O = {}), {} races, \
         {} shared objects under OPA",
        big.num_origins(),
        preset.paper.num_origins,
        big.num_races(),
        big.osa.num_shared_objects()
    );
}
