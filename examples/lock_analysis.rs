//! Beyond race detection (§3): the deadlock and over-synchronization
//! analyses built on the same OPA/OSA/SHB substrate.
//!
//! Run with: `cargo run --example lock_analysis`

use o2::prelude::*;

const APP: &str = r#"
    class L { }
    class S { field data; }
    // Classic AB-BA deadlock between two worker threads.
    class Transfer impl Runnable {
        field from; field to;
        method <init>(from, to) { this.from = from; this.to = to; }
        method run() {
            a = this.from; b = this.to;
            sync (a) { sync (b) { x = a; } }
        }
    }
    // A thread that locks around purely thread-local state.
    class Cautious impl Runnable {
        method run() {
            s = new S();
            sync (s) { s.data = s; }
        }
    }
    class Main {
        static method main() {
            acct1 = new L();
            acct2 = new L();
            t1 = new Transfer(acct1, acct2);
            t2 = new Transfer(acct2, acct1);
            t1.start();
            t2.start();
            c = new Cautious();
            c.start();
        }
    }
"#;

fn main() {
    let program = o2_ir::parser::parse(APP).expect("valid program");
    let report = O2Builder::new().build().analyze(&program);

    println!("== lock analyses on the O2 substrate ==\n");
    println!("races:");
    print!("{}", report.races.render(&program));

    println!("\ndeadlocks (lock-order cycles across origins):");
    let dl = report.detect_deadlocks(&program);
    print!("{}", dl.render(&program, &report.shb));

    println!("\nover-synchronization (locks guarding only origin-local data):");
    let os = report.find_oversync(&program);
    print!("{}", os.render(&program));
    println!(
        "\n({} acquisition sites guard genuinely shared data)",
        os.useful_sites
    );
}
