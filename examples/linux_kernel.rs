//! The Linux kernel case study (§5.4): four origin kinds — system calls,
//! driver functions, kernel threads, and interrupt handlers — and the
//! `update_vsyscall_tz` race on `vdata[CS_HRES_COARSE]`.
//!
//! Run with: `cargo run --example linux_kernel`

use o2::prelude::*;

fn main() {
    let model = o2_workloads::realbugs::linux_kernel();
    println!("== {} ==", model.name);
    println!("{}\n", model.description);

    let report = O2Builder::new().build().analyze(&model.program);

    // The paper configures syscall origins in pairs ("for each system
    // call, we create two origins representing concurrent calls of the
    // same system call").
    println!("origins ({}):", report.num_origins());
    let mut by_kind: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, data) in report.pta.arena.origins() {
        *by_kind.entry(data.kind.to_string()).or_default() += 1;
    }
    for (kind, n) in &by_kind {
        println!("  {kind}: {n}");
    }

    println!(
        "\nO2 found {} races (paper: {} confirmed in the kernel):\n",
        report.num_races(),
        model.expected_races
    );
    print!("{}", report.races.render(&model.program));

    // The origin-sharing view: like the paper's finding that most kernel
    // memory is origin-local, only a handful of locations are shared.
    let shared = report.osa.shared_entries().count();
    let total = report.osa.entries.len();
    println!(
        "\norigin-shared locations: {shared} of {total} accessed locations \
         (the rest are origin-local — candidates for region-based memory management)"
    );
}
