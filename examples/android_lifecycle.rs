//! The §4.2 Android harness: build an app model (the manifest analogue),
//! generate the analysis harness from the main activity, and find the
//! race between a background task and the UI-thread event handlers.
//!
//! Run with: `cargo run --example android_lifecycle`

use o2::prelude::*;
use o2_workloads::android::{build_harness, demo_app, LIFECYCLE};

fn main() {
    let app = demo_app();
    println!("== Android harness (§4.2) ==");
    println!(
        "main activity: {} (+{} started via startActivity)",
        app.main_activity,
        app.activities.len() - 1
    );
    println!("lifecycle callbacks treated as method calls: {LIFECYCLE:?}\n");

    let program = build_harness(&app);
    let report = O2Builder::new().build().analyze(&program);

    println!("origins discovered:");
    for (id, data) in report.pta.arena.origins() {
        let m = program.method(data.entry);
        println!(
            "  origin {}: {:10} {}.{}",
            id.0,
            data.kind.to_string(),
            program.class(m.class).name,
            m.name
        );
    }

    println!("\nraces:");
    print!("{}", report.races.render(&program));
    println!(
        "\nThe lifecycle callbacks and event handlers all run on the UI \
         thread (dispatcher lock), so only the background Fetcher task \
         races with them — the exact structure of the Firefox Focus bug."
    );

    // Sanity contrast: every handler made an origin, yet no
    // handler-vs-handler race was reported.
    let event_origins = report
        .pta
        .arena
        .origins()
        .filter(|(_, d)| matches!(d.kind, OriginKind::Event { .. }))
        .count();
    println!(
        "\nevent origins: {event_origins}, races: {}",
        report.num_races()
    );
}
