//! The C/pthread frontend: the same Memcached-shaped bug expressed in
//! C-like syntax (the paper's LLVM side), analyzed by the same pipeline.
//!
//! Run with: `cargo run --example pthread_c`

use o2::prelude::*;

const C_SRC: &str = r#"
    /* A slab allocator shared between a worker thread and the
       event-driven reassign path, memcached-style. */
    struct SlabClass { any slabs; any slab_list; };
    struct Mutex { any m; };
    global stats;

    void do_slabs_newslab(any sc, any lk) {
        pthread_mutex_lock(&lk);
        sc->slabs = sc;               /* with lock */
        pthread_mutex_unlock(&lk);
        global_write(stats, sc);      /* RACE on the stats global */
    }

    void do_slabs_reassign(any sc) {
        x = sc->slabs;                /* RACE: missing lock */
        y = global_read(stats);       /* RACE on the stats global */
    }

    void main() {
        sc = malloc(SlabClass);
        lk = malloc(Mutex);
        dispatch do_slabs_reassign(sc);
        pthread_create(&t, do_slabs_newslab, sc, lk);
        pthread_join(t);
    }
"#;

fn main() {
    let program = o2_ir::cfront::parse_c(C_SRC).expect("valid C-like source");
    let report = O2Builder::new().build().analyze(&program);

    println!("== C frontend (pthread + event loop) ==\n");
    println!("origins:");
    for (id, data) in report.pta.arena.origins() {
        let m = program.method(data.entry);
        println!("  origin {}: {:8} {}", id.0, data.kind.to_string(), m.name);
    }
    println!("\nraces:");
    print!("{}", report.races.render(&program));
    println!(
        "\nSame IR, same analyses — the C and Java frontends share the whole \
         pipeline, as O2 shares its engine between LLVM and WALA."
    );
}
