//! Android-style event handling (§4.2): handlers on one dispatcher are
//! serialized by an implicit global lock, so they never race with each
//! other — but they do race with background threads.
//!
//! Run with: `cargo run --example android_events`

use o2::prelude::*;

const APP: &str = r#"
    class Prefs { field theme; }
    class State { }
    // Two UI event handlers on the main-thread dispatcher.
    class ThemePicker impl EventHandler {
        field prefs;
        method <init>(p) { this.prefs = p; }
        method handleEvent(e) {
            p = this.prefs;
            p.theme = e;          // UI write
        }
    }
    class Renderer impl EventHandler {
        field prefs;
        method <init>(p) { this.prefs = p; }
        method handleEvent(e) {
            p = this.prefs;
            t = p.theme;          // UI read — serialized with the write
        }
    }
    // A background sync thread touching the same preferences.
    class SyncTask impl Runnable {
        field prefs;
        method <init>(p) { this.prefs = p; }
        method run() {
            p = this.prefs;
            p.theme = p;          // RACE: background write vs UI handlers
        }
    }
    class Main {
        static method main() {
            prefs = new Prefs();
            picker = new ThemePicker(prefs);
            renderer = new Renderer(prefs);
            ev = new State();
            picker.handleEvent(ev);
            renderer.handleEvent(ev);
            sync_task = new SyncTask(prefs);
            sync_task.start();
        }
    }
"#;

fn main() {
    let analyzer = O2Builder::new().build();
    let report = analyzer.analyze_source(APP).expect("valid program");
    let program = o2_ir::parser::parse(APP).unwrap();

    println!("== Android events meet threads ==\n");
    println!("origins:");
    for (id, data) in report.pta.arena.origins() {
        println!("  origin {}: {}", id.0, data.kind);
    }

    println!(
        "\nraces found: {} (event-vs-event on the same dispatcher is \
         serialized; only the background thread races)",
        report.num_races()
    );
    print!("{}", report.races.render(&program));
    for race in &report.races.races {
        let kinds = (
            report.pta.arena.origin_data(race.a.origin).kind,
            report.pta.arena.origin_data(race.b.origin).kind,
        );
        println!("  participants: {} vs {}", kinds.0, kinds.1);
    }

    // Turning the §4.2 dispatcher lock off shows what a naive event model
    // would report: the two UI handlers would falsely race.
    let no_dispatcher = O2Builder::new()
        .shb_config(ShbConfig {
            event_dispatcher_lock: false,
            ..Default::default()
        })
        .build()
        .analyze(&program);
    println!(
        "\nwithout the dispatcher lock (naive event model): {} races \
         (adds event-vs-event false positives)",
        no_dispatcher.num_races()
    );
}
