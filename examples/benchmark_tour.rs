//! A miniature of the paper's evaluation: run one benchmark preset under
//! every context policy and print the Table 5 / Table 8 style comparison.
//!
//! Run with: `cargo run --release --example benchmark_tour [preset]`

use o2::prelude::*;
use std::time::Duration;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "avrora".to_string());
    let preset = o2_workloads::preset_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown preset `{name}`; available:");
        for p in o2_workloads::all_presets() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    });
    let w = preset.generate();
    println!(
        "== {} ==  ({} statements, {} planted races, #O target {})\n",
        preset.name,
        w.program.num_statements(),
        w.truth.racy_fields.len(),
        preset.paper.num_origins
    );
    println!(
        "{:>8} | {:>9} | {:>9} | {:>7} | {:>7} | {:>9}",
        "policy", "pta", "detect", "#O", "races", "status"
    );
    println!("{}", "-".repeat(64));
    for policy in [
        Policy::insensitive(),
        Policy::cfa1(),
        Policy::cfa2(),
        Policy::obj1(),
        Policy::obj2(),
        Policy::origin1(),
    ] {
        let analyzer = O2Builder::new()
            .policy(policy)
            .pta_timeout(Duration::from_secs(10))
            .detect_timeout(Duration::from_secs(10))
            .build();
        let report = analyzer.analyze(&w.program);
        println!(
            "{:>8} | {:>9.2?} | {:>9.2?} | {:>7} | {:>7} | {:>9}",
            policy.to_string(),
            report.timings.pta,
            report.timings.detect,
            report.num_origins(),
            report.num_races(),
            if report.timed_out() { "TIMEOUT" } else { "ok" }
        );
    }
    let rd_start = std::time::Instant::now();
    let rd = o2_racerd::run_racerd(&w.program);
    println!(
        "{:>8} | {:>9.2?} | {:>9} | {:>7} | {:>7} | {:>9}",
        "RacerD",
        rd_start.elapsed(),
        "-",
        "-",
        rd.total_warnings(),
        "ok"
    );
    println!(
        "\nO2 reports exactly the planted ground truth; weaker contexts add \
         false positives; RacerD-style syntactic matching reports the most."
    );
}
