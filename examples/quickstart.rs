//! Quickstart: analyze the paper's Figure 2 program end-to-end.
//!
//! Run with: `cargo run --example quickstart`

use o2::prelude::*;

fn main() {
    // The Figure 2 program: two threads with the same entry point but
    // different origin attributes.
    let program = o2_workloads::figures::figure2();

    // The default configuration is the paper's: 1-origin-sensitive pointer
    // analysis (OPA), origin-sharing analysis (OSA), SHB construction, and
    // the optimized race detection engine.
    let analyzer = O2Builder::new().build();
    let report = analyzer.analyze(&program);

    println!("== O2 quickstart: Figure 2 ==\n");
    println!("{}", report.summary());

    // Origins: main plus the two threads T1 and T2.
    println!("\norigins ({}):", report.num_origins());
    for (id, data) in report.pta.arena.origins() {
        println!("  origin {} kind={} entry={}", id.0, data.kind, {
            let m = program.method(data.entry);
            format!("{}.{}", program.class(m.class).name, m.name)
        });
    }

    // OSA: which locations are origin-shared and by whom (Figure 2(d)).
    println!("\norigin-sharing analysis:");
    let osa_text = report.osa.render(&program, &report.pta);
    if osa_text.is_empty() {
        println!("  (no origin-shared locations with a writer)");
    } else {
        print!("{osa_text}");
    }

    // Races: none — the per-thread Y objects are proven origin-local.
    println!("\nrace report:");
    print!("{}", report.races.render(&program));

    // Contrast with the context-insensitive baseline on Figure 3, where
    // the missing context switch at origin allocations manufactures a
    // false alias and a false race.
    let fig3 = o2_workloads::figures::figure3();
    let opa = analyzer.analyze(&fig3);
    let zero = O2Builder::new()
        .policy(Policy::insensitive())
        .build()
        .analyze(&fig3);
    println!("\n== Figure 3: context switch at origin allocations ==");
    println!("OPA   races: {}", opa.num_races());
    println!(
        "0-ctx races: {} (false positives from the shared helper)",
        zero.num_races()
    );
}
